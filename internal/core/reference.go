package core

import (
	"fmt"

	"snaple/internal/graph"
	"snaple/internal/topk"
)

// ReferenceSnaple executes SNAPLE's scoring (Sections 3-4) serially on a
// single machine, with semantics bit-identical to PredictGAS and to the
// parallel shared-memory backend (internal/engine): the same hash-keyed
// truncation draws, the same relay selection, the same sorted-fold
// aggregation and the same tie-breaking. The other substrates are required
// by tests to agree exactly; this loop also serves as an in-process
// predictor for small graphs and as the test oracle.
func ReferenceSnaple(g *graph.Digraph, cfg Config) (Predictions, error) {
	if cfg.withDefaults().Paths == 3 {
		return ReferenceSnaple3Hop(g, cfg)
	}
	r, err := NewStepRunner(g, cfg)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	s := r.NewScratch()

	// Step 1: truncated neighbourhoods.
	trunc := make([][]graph.VertexID, n)
	for u := 0; u < n; u++ {
		trunc[u] = r.Truncate(graph.VertexID(u), s)
	}

	// Step 2: raw similarities and relay selection.
	sims := make([][]VertexSim, n)
	for u := 0; u < n; u++ {
		sims[u] = r.Relays(graph.VertexID(u), trunc, s)
	}

	// Step 3: path combination and aggregation.
	pred := make(Predictions, n)
	for u := 0; u < n; u++ {
		pred[u] = r.Combine(graph.VertexID(u), trunc, sims, s)
	}
	return pred, nil
}

// ReferenceBaseline is the serial oracle for BASELINE: for every vertex it
// scores each 2-hop candidate with Jaccard on full neighbourhoods and keeps
// the top k.
func ReferenceBaseline(g *graph.Digraph, k int) (Predictions, error) {
	if k < 1 {
		return nil, errBaselineK(k)
	}
	n := g.NumVertices()
	pred := make(Predictions, n)
	var jac Jaccard
	for u := 0; u < n; u++ {
		uid := graph.VertexID(u)
		nbrs := g.OutNeighbors(uid)
		if len(nbrs) == 0 {
			continue
		}
		coll := topk.New(k)
		seen := make(map[graph.VertexID]struct{})
		for _, v := range nbrs {
			for _, z := range g.OutNeighbors(v) {
				if z == uid || containsVertex(nbrs, z) {
					continue
				}
				if _, dup := seen[z]; dup {
					continue
				}
				seen[z] = struct{}{}
				coll.Push(uint32(z), jac.Score(nbrs, g.OutNeighbors(z), 0, 0))
			}
		}
		items := coll.Result()
		if len(items) == 0 {
			continue
		}
		out := make([]Prediction, len(items))
		for i, it := range items {
			out[i] = Prediction{Vertex: graph.VertexID(it.ID), Score: it.Score}
		}
		pred[uid] = out
	}
	return pred, nil
}

func errBaselineK(k int) error {
	return fmt.Errorf("core: baseline k=%d, need >= 1", k)
}
