package core

import (
	"fmt"

	"snaple/internal/graph"
	"snaple/internal/topk"
)

// ReferenceSnaple executes SNAPLE's scoring (Sections 3-4) serially on a
// single machine, with semantics bit-identical to PredictGAS and to the
// parallel shared-memory backend (internal/engine): the same hash-keyed
// truncation draws, the same relay selection, the same sorted-fold
// aggregation and the same tie-breaking. The other substrates are required
// by tests to agree exactly; this loop also serves as an in-process
// predictor for small graphs and as the test oracle.
func ReferenceSnaple(g graph.View, cfg Config) (Predictions, error) {
	if cfg.withDefaults().Paths == 3 {
		return ReferenceSnaple3Hop(g, cfg)
	}
	r, err := NewStepRunner(g, cfg)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	s := r.NewScratch()

	// Steps 1-2: truncated neighbourhoods and relay selection, materialised
	// in flat arenas via the count/fill protocol (arena.go).
	trunc, sims := runSteps12(r, n, s)

	// Step 3: path combination and aggregation. Predictions append into one
	// shared buffer; pred[u] aliases its region. A scoped run visits only
	// the sources — members are ascending, so the buffer layout matches the
	// full loop's.
	pred := make(Predictions, n)
	var buf []Prediction
	eachScoped(n, r.Frontier().StepSet(DistCombine), func(u graph.VertexID) {
		start := len(buf)
		buf = r.CombineAppend(u, trunc, sims, s, buf)
		if len(buf) > start {
			pred[u] = buf[start:len(buf):len(buf)]
		}
	})
	return pred, nil
}

// eachScoped runs fn over set's members (a query-scoped pass), or over all
// n vertices when set is nil (a full pass). Both orders are ascending.
func eachScoped(n int, set *VertexSet, fn func(graph.VertexID)) {
	if set == nil {
		for u := 0; u < n; u++ {
			fn(graph.VertexID(u))
		}
		return
	}
	for _, u := range set.Members() {
		fn(u)
	}
}

// runSteps12 executes steps 1 and 2 serially into fresh arenas — the shared
// prefix of the 2-hop and 3-hop references. Scoped runs restrict each pass
// to its frontier set; unvisited rows keep their zero count.
func runSteps12(r *StepRunner, n int, s *Scratch) (*Arena[graph.VertexID], *Arena[VertexSim]) {
	f := r.Frontier()
	trunc := NewArena[graph.VertexID](n)
	eachScoped(n, f.StepSet(DistTruncate), func(u graph.VertexID) {
		trunc.SetCount(u, r.TruncateCount(u, s))
	})
	trunc.FinishCounts()
	eachScoped(n, f.StepSet(DistTruncate), func(u graph.VertexID) {
		r.TruncateFill(u, trunc.Row(u), s)
	})

	sims := NewArena[VertexSim](n)
	eachScoped(n, f.StepSet(DistRelays), func(u graph.VertexID) {
		sims.SetCount(u, r.RelayCount(u))
	})
	sims.FinishCounts()
	eachScoped(n, f.StepSet(DistRelays), func(u graph.VertexID) {
		r.RelaysFill(u, trunc, sims.Row(u), s)
	})
	return trunc, sims
}

// ReferenceBaseline is the serial oracle for BASELINE: for every vertex it
// scores each 2-hop candidate with Jaccard on full neighbourhoods and keeps
// the top k.
func ReferenceBaseline(g graph.View, k int) (Predictions, error) {
	if k < 1 {
		return nil, errBaselineK(k)
	}
	n := g.NumVertices()
	pred := make(Predictions, n)
	var jac Jaccard
	for u := 0; u < n; u++ {
		uid := graph.VertexID(u)
		nbrs := g.OutNeighbors(uid)
		if len(nbrs) == 0 {
			continue
		}
		coll := topk.New(k)
		seen := make(map[graph.VertexID]struct{})
		for _, v := range nbrs {
			for _, z := range g.OutNeighbors(v) {
				if z == uid || containsVertex(nbrs, z) {
					continue
				}
				if _, dup := seen[z]; dup {
					continue
				}
				seen[z] = struct{}{}
				coll.Push(uint32(z), jac.Score(nbrs, g.OutNeighbors(z), 0, 0))
			}
		}
		items := coll.Result()
		if len(items) == 0 {
			continue
		}
		out := make([]Prediction, len(items))
		for i, it := range items {
			out[i] = Prediction{Vertex: graph.VertexID(it.ID), Score: it.Score}
		}
		pred[uid] = out
	}
	return pred, nil
}

func errBaselineK(k int) error {
	return fmt.Errorf("core: baseline k=%d, need >= 1", k)
}
