package core

import (
	"fmt"

	"snaple/internal/graph"
	"snaple/internal/topk"
)

// ReferenceSnaple executes SNAPLE's scoring (Sections 3-4) serially on a
// single machine, with semantics bit-identical to PredictGAS: the same
// hash-keyed truncation draws, the same relay selection, the same
// sorted-fold aggregation and the same tie-breaking. The distributed
// implementation is required by tests to agree exactly, for every
// partitioning; it also serves as an in-process predictor for small graphs.
func ReferenceSnaple(g *graph.Digraph, cfg Config) (Predictions, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Paths == 3 {
		return ReferenceSnaple3Hop(g, cfg)
	}
	n := g.NumVertices()
	st := newSnapleState(g, cfg)

	// Step 1: truncated neighbourhoods.
	trunc := make([][]graph.VertexID, n)
	for u := 0; u < n; u++ {
		uid := graph.VertexID(u)
		all := g.OutNeighbors(uid)
		kept := make([]graph.VertexID, 0, len(all))
		for _, v := range all {
			if keepTruncated(cfg.Seed, uid, v, int(st.deg[u]), cfg.ThrGamma) {
				kept = append(kept, v)
			}
		}
		trunc[u] = kept // already sorted: subsequence of sorted adjacency
	}

	// Step 2: raw similarities and relay selection.
	sims := make([][]VertexSim, n)
	for u := 0; u < n; u++ {
		uid := graph.VertexID(u)
		nbrs := g.OutNeighbors(uid)
		if len(nbrs) == 0 {
			continue
		}
		cands := make([]VertexSim, 0, len(nbrs))
		for _, v := range nbrs {
			sim := simScore(cfg.Score.Sim, uid, v, trunc[u], trunc[v], int(st.deg[u]), int(st.deg[v]))
			cands = append(cands, VertexSim{V: v, Sim: sim})
		}
		sims[u] = selectRelays(cfg, uid, cands)
	}

	// Step 3: path combination and aggregation.
	pred := make(Predictions, n)
	comb := cfg.Score.Comb.Fn
	for u := 0; u < n; u++ {
		uid := graph.VertexID(u)
		if len(sims[u]) == 0 {
			continue
		}
		paths := make(map[graph.VertexID][]float64)
		for _, vs := range sims[u] {
			for _, zs := range sims[vs.V] {
				z := zs.V
				if z == uid || containsVertex(trunc[u], z) {
					continue
				}
				paths[z] = append(paths[z], comb(vs.Sim, zs.Sim))
			}
		}
		if len(paths) == 0 {
			continue
		}
		coll := topk.New(cfg.K)
		for z, vals := range paths {
			coll.Push(uint32(z), cfg.Score.Agg.FoldPaths(vals))
		}
		items := coll.Result()
		out := make([]Prediction, len(items))
		for i, it := range items {
			out[i] = Prediction{Vertex: graph.VertexID(it.ID), Score: it.Score}
		}
		pred[uid] = out
	}
	return pred, nil
}

// ReferenceBaseline is the serial oracle for BASELINE: for every vertex it
// scores each 2-hop candidate with Jaccard on full neighbourhoods and keeps
// the top k.
func ReferenceBaseline(g *graph.Digraph, k int) (Predictions, error) {
	if k < 1 {
		return nil, errBaselineK(k)
	}
	n := g.NumVertices()
	pred := make(Predictions, n)
	var jac Jaccard
	for u := 0; u < n; u++ {
		uid := graph.VertexID(u)
		nbrs := g.OutNeighbors(uid)
		if len(nbrs) == 0 {
			continue
		}
		coll := topk.New(k)
		seen := make(map[graph.VertexID]struct{})
		for _, v := range nbrs {
			for _, z := range g.OutNeighbors(v) {
				if z == uid || containsVertex(nbrs, z) {
					continue
				}
				if _, dup := seen[z]; dup {
					continue
				}
				seen[z] = struct{}{}
				coll.Push(uint32(z), jac.Score(nbrs, g.OutNeighbors(z), 0, 0))
			}
		}
		items := coll.Result()
		if len(items) == 0 {
			continue
		}
		out := make([]Prediction, len(items))
		for i, it := range items {
			out[i] = Prediction{Vertex: graph.VertexID(it.ID), Score: it.Score}
		}
		pred[uid] = out
	}
	return pred, nil
}

func errBaselineK(k int) error {
	return fmt.Errorf("core: baseline k=%d, need >= 1", k)
}
