package core

import (
	"errors"
	"math"
	"testing"

	"snaple/internal/cluster"
	"snaple/internal/gen"
	"snaple/internal/graph"
	"snaple/internal/partition"
)

func communityGraph(t testing.TB, n int, seed uint64) *graph.Digraph {
	t.Helper()
	g, err := gen.Community(gen.CommunityConfig{N: n, Communities: 8}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustScore(t testing.TB, name string) ScoreSpec {
	t.Helper()
	s, err := ScoreByName(name, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func runGAS(t testing.TB, g *graph.Digraph, cfg Config, parts, nodes int) *Result {
	t.Helper()
	assign, err := partition.HashEdge{Seed: 11}.Partition(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{Nodes: nodes, Spec: cluster.TypeI()}, parts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PredictGAS(g, assign, cl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// predictionsEqual demands bit-identical vertices and scores.
func predictionsEqual(t *testing.T, got, want Predictions, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for v := range want {
		g, w := got[v], want[v]
		if len(g) != len(w) {
			t.Fatalf("%s: vertex %d has %d predictions, want %d\n got=%v\nwant=%v",
				label, v, len(g), len(w), g, w)
		}
		for i := range w {
			if g[i].Vertex != w[i].Vertex || g[i].Score != w[i].Score {
				t.Fatalf("%s: vertex %d prediction %d = %+v, want %+v",
					label, v, i, g[i], w[i])
			}
		}
	}
}

// TestGASMatchesSerialReference is the central correctness test: the
// distributed Algorithm 2 must equal the serial reference bit-for-bit, for
// every score family, policy, truncation/sampling setting and partitioning.
func TestGASMatchesSerialReference(t *testing.T) {
	g := communityGraph(t, 400, 21)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"linearSum unlimited", Config{Score: mustScore(t, "linearSum"), K: 5, Seed: 1}},
		{"linearSum klocal=8", Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 8, Seed: 1}},
		{"linearSum thr=5", Config{Score: mustScore(t, "linearSum"), K: 5, ThrGamma: 5, Seed: 1}},
		{"linearSum thr=5 klocal=4", Config{Score: mustScore(t, "linearSum"), K: 5, ThrGamma: 5, KLocal: 4, Seed: 2}},
		{"counter", Config{Score: mustScore(t, "counter"), K: 5, KLocal: 8, Seed: 3}},
		{"PPR", Config{Score: mustScore(t, "PPR"), K: 5, KLocal: 8, Seed: 3}},
		{"euclMean", Config{Score: mustScore(t, "euclMean"), K: 5, KLocal: 8, Seed: 4}},
		{"geomGeom", Config{Score: mustScore(t, "geomGeom"), K: 5, KLocal: 8, Seed: 4}},
		{"policy min", Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 6, Policy: SelectMin, Seed: 5}},
		{"policy rnd", Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 6, Policy: SelectRnd, Seed: 5}},
		{"k=10", Config{Score: mustScore(t, "linearSum"), K: 10, KLocal: 8, Seed: 6}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := ReferenceSnaple(g, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, parts := range []int{1, 4, 7} {
				res := runGAS(t, g, tc.cfg, parts, 3)
				predictionsEqual(t, res.Pred, want, tc.name)
			}
		})
	}
}

// TestGASBaselineMatchesSerialReference: the distributed BASELINE equals its
// serial oracle exactly.
func TestGASBaselineMatchesSerialReference(t *testing.T) {
	g := communityGraph(t, 250, 31)
	want, err := ReferenceBaseline(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 3, 6} {
		assign, err := partition.Greedy{}.Partition(g, parts)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.New(cluster.Config{Nodes: 2, Spec: cluster.TypeII()}, parts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := PredictBaselineGAS(g, assign, cl, 5)
		if err != nil {
			t.Fatal(err)
		}
		predictionsEqual(t, res.Pred, want, "baseline")
	}
}

// TestPredictionsExcludeExistingEdges: no prediction may already be a
// neighbour or the vertex itself (the argtopk domain of Algorithm 1).
func TestPredictionsExcludeExistingEdges(t *testing.T) {
	g := communityGraph(t, 300, 41)
	cfg := Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 10, Seed: 7}
	res := runGAS(t, g, cfg, 4, 2)
	checked := 0
	for u, preds := range res.Pred {
		uid := graph.VertexID(u)
		for _, p := range preds {
			if p.Vertex == uid {
				t.Fatalf("vertex %d predicted itself", u)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no predictions produced at all")
	}
	// Without truncation, Γ̂ = Γ, so no prediction may be an existing edge.
	for u, preds := range res.Pred {
		for _, p := range preds {
			if g.HasEdge(graph.VertexID(u), p.Vertex) {
				t.Fatalf("vertex %d predicted existing neighbour %d", u, p.Vertex)
			}
		}
	}
}

// TestScoresSortedDescending: prediction lists are best-first with
// deterministic tie-breaking.
func TestScoresSortedDescending(t *testing.T) {
	g := communityGraph(t, 300, 43)
	cfg := Config{Score: mustScore(t, "linearSum"), K: 8, KLocal: 10, Seed: 9}
	res := runGAS(t, g, cfg, 3, 2)
	for u, preds := range res.Pred {
		for i := 1; i < len(preds); i++ {
			a, b := preds[i-1], preds[i]
			if a.Score < b.Score || (a.Score == b.Score && a.Vertex > b.Vertex) {
				t.Fatalf("vertex %d predictions out of order: %+v then %+v", u, a, b)
			}
		}
	}
}

// TestCounterCountsPaths: with the counter score and the Sum aggregator the
// score of a candidate is exactly its number of kept 2-hop paths; on an
// unsampled run over a small graph we can verify it combinatorially.
func TestCounterCountsPaths(t *testing.T) {
	// u=0 -> {1,2}; 1 -> {3}; 2 -> {3,4}. Paths to 3: 2 (via 1 and 2); to 4: 1.
	g := graph.MustFromEdges(5, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3}, {Src: 2, Dst: 4},
	})
	cfg := Config{Score: mustScore(t, "counter"), K: 5, Seed: 1}
	pred, err := ReferenceSnaple(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p0 := pred[0]
	if len(p0) != 2 {
		t.Fatalf("vertex 0 predictions: %+v, want 2 entries", p0)
	}
	if p0[0].Vertex != 3 || p0[0].Score != 2 {
		t.Errorf("candidate 3 = %+v, want score 2 (two paths)", p0[0])
	}
	if p0[1].Vertex != 4 || p0[1].Score != 1 {
		t.Errorf("candidate 4 = %+v, want score 1", p0[1])
	}
}

// TestPPRScore verifies the PPR row of Table 3 on a hand graph:
// sim(x,y)=1/|Γ(y)|, path value sim(u,v)+sim(v,z), aggregated by Sum.
func TestPPRScore(t *testing.T) {
	g := graph.MustFromEdges(5, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4},
	})
	cfg := Config{Score: mustScore(t, "PPR"), K: 5, Seed: 1}
	pred, err := ReferenceSnaple(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// From 0: relay 1 (sim(0,1)=1/|Γ(1)|=1/2). Candidates via 1: 2 and 3.
	//   path 0->1->2: sim(0,1)+sim(1,2) = 1/2 + 1/1 = 1.5
	//   path 0->1->3: 1/2 + 1/1 = 1.5  (|Γ(3)| = 1)
	p0 := pred[0]
	if len(p0) != 2 {
		t.Fatalf("vertex 0: %+v", p0)
	}
	for _, p := range p0 {
		if math.Abs(p.Score-1.5) > 1e-12 {
			t.Errorf("PPR score of %d = %v, want 1.5", p.Vertex, p.Score)
		}
	}
	// Tie broken by id: 2 before 3.
	if p0[0].Vertex != 2 || p0[1].Vertex != 3 {
		t.Errorf("tie order: %+v", p0)
	}
}

// TestKLocalBoundsCandidates: k_local sampling caps the candidate space at
// k_local^2 per vertex (Section 5.7).
func TestKLocalBoundsCandidates(t *testing.T) {
	g := communityGraph(t, 500, 51)
	for _, klocal := range []int{2, 4} {
		cfg := Config{Score: mustScore(t, "linearSum"), K: 1 << 20, KLocal: klocal, Seed: 3}
		// K huge: predictions = all candidates; count must be <= klocal^2.
		pred, err := ReferenceSnaple(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for u, ps := range pred {
			if len(ps) > klocal*klocal {
				t.Fatalf("klocal=%d: vertex %d has %d candidates > %d",
					klocal, u, len(ps), klocal*klocal)
			}
		}
	}
}

// TestSelectionPolicies: Γmax keeps the most similar relays, Γmin the least
// similar, and they differ when similarity spreads.
func TestSelectionPolicies(t *testing.T) {
	cands := []VertexSim{{V: 1, Sim: 0.9}, {V: 2, Sim: 0.5}, {V: 3, Sim: 0.1}, {V: 4, Sim: 0.7}}
	cfgMax := Config{KLocal: 2, Policy: SelectMax}
	cfgMin := Config{KLocal: 2, Policy: SelectMin}
	cfgRnd := Config{KLocal: 2, Policy: SelectRnd, Seed: 123}

	max := selectRelays(cfgMax, 0, cands)
	if len(max) != 2 || max[0].V != 1 || max[1].V != 4 {
		t.Errorf("Γmax picked %+v, want vertices 1 and 4", max)
	}
	min := selectRelays(cfgMin, 0, cands)
	if len(min) != 2 || min[0].V != 2 || min[1].V != 3 {
		t.Errorf("Γmin picked %+v, want vertices 2 and 3", min)
	}
	rnd := selectRelays(cfgRnd, 0, cands)
	if len(rnd) != 2 {
		t.Errorf("Γrnd picked %d relays, want 2", len(rnd))
	}
	// Γrnd is deterministic in the seed.
	rnd2 := selectRelays(cfgRnd, 0, cands)
	for i := range rnd {
		if rnd[i] != rnd2[i] {
			t.Error("Γrnd not deterministic")
		}
	}
	// No sampling when the candidate list is short or KLocal unlimited.
	all := selectRelays(Config{KLocal: Unlimited, Policy: SelectMax}, 0, cands)
	if len(all) != 4 {
		t.Errorf("unlimited kept %d", len(all))
	}
	// Output sorted by vertex.
	for i := 1; i < len(all); i++ {
		if all[i].V < all[i-1].V {
			t.Error("relays not sorted by vertex")
		}
	}
}

func TestTruncationBehaviour(t *testing.T) {
	// Unlimited threshold keeps everything.
	for v := 0; v < 50; v++ {
		if !keepTruncated(1, 0, graph.VertexID(v), 50, Unlimited) {
			t.Fatal("unlimited truncation dropped a neighbour")
		}
		if !keepTruncated(1, 0, graph.VertexID(v), 10, 20) {
			t.Fatal("degree below threshold must never truncate")
		}
	}
	// Above threshold, the kept fraction approximates thr/deg.
	kept := 0
	const deg, thr, trials = 200, 20, 400
	for u := 0; u < trials; u++ {
		for v := 0; v < deg; v++ {
			if keepTruncated(7, graph.VertexID(u), graph.VertexID(1000+v), deg, thr) {
				kept++
			}
		}
	}
	got := float64(kept) / float64(trials*deg)
	want := float64(thr) / float64(deg)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("kept fraction %.4f, want ~%.4f", got, want)
	}
}

func TestConfigValidation(t *testing.T) {
	good := Config{Score: mustScore(t, "linearSum"), K: 5}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Score: ScoreSpec{}, K: 5},
		{Score: mustScore(t, "linearSum"), K: 0},
		{Score: mustScore(t, "linearSum"), K: 5, KLocal: -1},
		{Score: mustScore(t, "linearSum"), K: 5, ThrGamma: -2},
		{Score: mustScore(t, "linearSum"), K: 5, Policy: SelectionPolicy(9)},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := ScoreByName("nope", 0.9); err == nil {
		t.Error("unknown score accepted")
	}
	if _, err := ScoreByName("linearSum", 1.5); err == nil {
		t.Error("alpha out of range accepted")
	}
}

func TestScoreRegistryComplete(t *testing.T) {
	names := ScoreNames()
	if len(names) != 11 {
		t.Fatalf("Table 3 has 11 scores, registry has %d", len(names))
	}
	for _, n := range names {
		s, err := ScoreByName(n, 0.9)
		if err != nil {
			t.Errorf("ScoreByName(%q): %v", n, err)
			continue
		}
		if err := s.Validate(); err != nil {
			t.Errorf("spec %q invalid: %v", n, err)
		}
		if s.Name != n {
			t.Errorf("spec name %q != requested %q", s.Name, n)
		}
	}
	if len(SumFamilyScores()) != 5 {
		t.Error("Sum family should list 5 scores (Figures 8-10)")
	}
}

// TestBaselineExhaustsRestrictedMemory reproduces the Section 5.3 failure:
// with a tight per-node budget, BASELINE dies of memory exhaustion while
// SNAPLE completes on the same cluster.
func TestBaselineExhaustsRestrictedMemory(t *testing.T) {
	g := communityGraph(t, 1500, 61)
	const parts = 4
	assign, err := partition.HashEdge{Seed: 5}.Partition(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	// Calibrated between the two systems' peaks on this workload:
	// BASELINE needs ~3.7 MB per node, SNAPLE ~0.73 MB.
	budget := int64(1536 * 1024)
	mkCluster := func() *cluster.Cluster {
		cl, err := cluster.New(cluster.Config{Nodes: 2, Spec: cluster.TypeI(), MemBudgetBytes: budget}, parts)
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	_, err = PredictBaselineGAS(g, assign, mkCluster(), 5)
	if !errors.Is(err, cluster.ErrMemoryExhausted) {
		t.Fatalf("baseline should exhaust memory, got %v", err)
	}
	cfg := Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 20, ThrGamma: 200, Seed: 1}
	if _, err := PredictGAS(g, assign, mkCluster(), cfg); err != nil {
		t.Fatalf("SNAPLE should fit in the same budget, got %v", err)
	}
}

// TestSnapleCheaperThanBaseline: on identical deployments SNAPLE must move
// fewer bytes and peak lower than BASELINE — the paper's core claim.
func TestSnapleCheaperThanBaseline(t *testing.T) {
	g := communityGraph(t, 800, 71)
	const parts = 6
	assign, err := partition.HashEdge{Seed: 3}.Partition(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	run := func(fn func(cl *cluster.Cluster) (*Result, error)) *Result {
		cl, err := cluster.New(cluster.Config{Nodes: 3, Spec: cluster.TypeI()}, parts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fn(cl)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	snaple := run(func(cl *cluster.Cluster) (*Result, error) {
		return PredictGAS(g, assign, cl, Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 20, ThrGamma: 200, Seed: 1})
	})
	base := run(func(cl *cluster.Cluster) (*Result, error) {
		return PredictBaselineGAS(g, assign, cl, 5)
	})
	if snaple.Total.CrossBytes >= base.Total.CrossBytes {
		t.Errorf("SNAPLE moved %d cross-node bytes, BASELINE %d — expected SNAPLE lower",
			snaple.Total.CrossBytes, base.Total.CrossBytes)
	}
	if snaple.Total.MemPeakBytes >= base.Total.MemPeakBytes {
		t.Errorf("SNAPLE peaked at %d bytes, BASELINE %d — expected SNAPLE lower",
			snaple.Total.MemPeakBytes, base.Total.MemPeakBytes)
	}
}

func TestPredictGASValidatesConfig(t *testing.T) {
	g := communityGraph(t, 50, 81)
	assign, err := partition.HashEdge{}.Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{Nodes: 1, Spec: cluster.TypeI()}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PredictGAS(g, assign, cl, Config{K: -1}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := PredictBaselineGAS(g, assign, cl, 0); err == nil {
		t.Error("baseline k=0 accepted")
	}
}
