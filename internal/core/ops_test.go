package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"snaple/internal/graph"
)

func TestSimilarityTable(t *testing.T) {
	a := []graph.VertexID{1, 2, 3, 4}
	b := []graph.VertexID{3, 4, 5}
	empty := []graph.VertexID{}
	tests := []struct {
		name       string
		sim        Similarity
		a, b       []graph.VertexID
		uDeg, vDeg int
		want       float64
	}{
		{"jaccard overlap", Jaccard{}, a, b, 0, 0, 2.0 / 5.0},
		{"jaccard identical", Jaccard{}, a, a, 0, 0, 1},
		{"jaccard disjoint", Jaccard{}, a, []graph.VertexID{9}, 0, 0, 0},
		{"jaccard empty", Jaccard{}, empty, empty, 0, 0, 0},
		{"common", CommonNeighbors{}, a, b, 0, 0, 2},
		{"cosine", Cosine{}, a, b, 0, 0, 2 / math.Sqrt(12)},
		{"cosine empty", Cosine{}, empty, b, 0, 0, 0},
		{"overlap", Overlap{}, a, b, 0, 0, 2.0 / 3.0},
		{"overlap empty", Overlap{}, a, empty, 0, 0, 0},
		{"invdeg", InverseDegree{}, a, b, 7, 4, 0.25},
		{"invdeg zero", InverseDegree{}, a, b, 7, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.sim.Score(tt.a, tt.b, tt.uDeg, tt.vDeg)
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("%s.Score = %v, want %v", tt.sim.Name(), got, tt.want)
			}
		})
	}
}

func TestJaccardSymmetricAndBounded(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		mk := func(r *rand.Rand) []graph.VertexID {
			n := r.Intn(20)
			seen := map[graph.VertexID]bool{}
			for i := 0; i < n; i++ {
				seen[graph.VertexID(r.Intn(30))] = true
			}
			out := make([]graph.VertexID, 0, len(seen))
			for v := range seen {
				out = append(out, v)
			}
			sortVertexIDs(out)
			return out
		}
		a, b := mk(ra), mk(rb)
		var j Jaccard
		s1, s2 := j.Score(a, b, 0, 0), j.Score(b, a, 0, 0)
		return s1 == s2 && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCombinatorsMatchTable1(t *testing.T) {
	const a, b = 0.3, 0.4
	tests := []struct {
		comb Combinator
		want float64
	}{
		{Linear(0.5), 0.5*a + 0.5*b},
		{Linear(0.9), 0.9*a + 0.1*b},
		{Eucl(), math.Sqrt(a*a + b*b)},
		{GeomComb(), math.Sqrt(a * b)},
		{SumComb(), a + b},
		{CountComb(), 1},
	}
	for _, tt := range tests {
		if got := tt.comb.Fn(a, b); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s(%v,%v) = %v, want %v", tt.comb.Name, a, b, got, tt.want)
		}
	}
}

// TestCombinatorsMonotonic checks the paper's requirement that ⊗ is
// monotonically increasing (non-decreasing) in both arguments.
func TestCombinatorsMonotonic(t *testing.T) {
	combs := []Combinator{Linear(0.9), Linear(0.5), Eucl(), GeomComb(), SumComb(), CountComb()}
	f := func(aRaw, bRaw, dRaw uint16) bool {
		a := float64(aRaw) / math.MaxUint16
		b := float64(bRaw) / math.MaxUint16
		d := float64(dRaw) / math.MaxUint16
		for _, c := range combs {
			if c.Fn(a+d, b) < c.Fn(a, b) || c.Fn(a, b+d) < c.Fn(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAggregatorsMatchTable2(t *testing.T) {
	vals := []float64{0.2, 0.4, 0.6}
	tests := []struct {
		agg  Aggregator
		want float64
	}{
		{AggSum(), 1.2},
		{AggMean(), 0.4},
		{AggGeom(), math.Pow(0.2*0.4*0.6, 1.0/3.0)},
	}
	for _, tt := range tests {
		if got := tt.agg.FoldPaths(vals); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s(%v) = %v, want %v", tt.agg.Name, vals, got, tt.want)
		}
	}
}

func TestAggregatorEdgeCases(t *testing.T) {
	for _, agg := range []Aggregator{AggSum(), AggMean(), AggGeom()} {
		if got := agg.FoldPaths(nil); got != 0 {
			t.Errorf("%s(nil) = %v, want 0", agg.Name, got)
		}
		if got := agg.FoldPaths([]float64{0.7}); math.Abs(got-0.7) > 1e-12 {
			t.Errorf("%s(single) = %v, want 0.7", agg.Name, got)
		}
	}
	// Geom zeroes out on any zero path (Figure 3's vertex e).
	if got := AggGeom().FoldPaths([]float64{0, 0.9, 0.9}); got != 0 {
		t.Errorf("Geom with a zero path = %v, want 0", got)
	}
	// Sum is popularity-sensitive, Mean is not.
	many := []float64{0.2, 0.2, 0.2, 0.2}
	one := []float64{0.3}
	if AggSum().FoldPaths(many) <= AggSum().FoldPaths(one) {
		t.Error("Sum should reward path count")
	}
	if AggMean().FoldPaths(many) >= AggMean().FoldPaths(one) {
		t.Error("Mean should not reward path count here")
	}
}

// TestFoldPathsOrderIndependent: folding any permutation of the same values
// must produce the identical float — the property the distributed/serial
// equivalence rests on.
func TestFoldPathsOrderIndependent(t *testing.T) {
	aggs := []Aggregator{AggSum(), AggMean(), AggGeom()}
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%30) + 1
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		for _, agg := range aggs {
			want := agg.FoldPaths(vals)
			for trial := 0; trial < 5; trial++ {
				perm := make([]float64, n)
				copy(perm, vals)
				rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
				if agg.FoldPaths(perm) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestFigure3Example reproduces the worked example of Figure 3: scores of
// a's candidates e, f, g under the linear combinator (α=0.5) and the three
// aggregators. Path similarities are taken from the figure's edge weights.
func TestFigure3Example(t *testing.T) {
	lin := Linear(0.5).Fn
	// Figure 3 reports, for linearSum/linearMean/linearGeom:
	//   e: 0.3 / 0.15 / 0    f: 0.6 / 0.3 / 0.28    g: 0.75 / 0.25 / 0.24
	// e has two 2-hop paths (one through h with zero similarities, the case
	// the text says Geom penalises), f two, g three. The per-path linear
	// combinations below reproduce the table within rounding.
	pathsE := []float64{lin(0.5, 0.1), lin(0, 0)}
	pathsF := []float64{lin(0.5, 0.3), lin(0.2, 0.2)}
	pathsG := []float64{lin(0.5, 0.2), lin(0.2, 0.2), lin(0.3, 0.1)}

	check := func(agg Aggregator, vals []float64, want float64, label string) {
		t.Helper()
		if got := agg.FoldPaths(vals); math.Abs(got-want) > 0.015 {
			t.Errorf("%s = %.3f, want %.3f", label, got, want)
		}
	}
	check(AggSum(), pathsE, 0.3, "linearSum(e)")
	check(AggSum(), pathsF, 0.6, "linearSum(f)")
	check(AggSum(), pathsG, 0.75, "linearSum(g)")
	check(AggMean(), pathsE, 0.15, "linearMean(e)")
	check(AggMean(), pathsF, 0.3, "linearMean(f)")
	check(AggMean(), pathsG, 0.25, "linearMean(g)")
	check(AggGeom(), pathsE, 0, "linearGeom(e)")
	check(AggGeom(), pathsF, 0.28, "linearGeom(f)")
	check(AggGeom(), pathsG, 0.24, "linearGeom(g)")

	// The winners per aggregator match the bold entries of the figure.
	if !(AggSum().FoldPaths(pathsG) > AggSum().FoldPaths(pathsF)) {
		t.Error("Sum should rank g above f (popularity wins)")
	}
	if !(AggMean().FoldPaths(pathsF) > AggMean().FoldPaths(pathsG)) {
		t.Error("Mean should rank f above g")
	}
	if !(AggGeom().FoldPaths(pathsF) > AggGeom().FoldPaths(pathsG)) {
		t.Error("Geom should rank f above g")
	}
}

func sortVertexIDs(v []graph.VertexID) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
