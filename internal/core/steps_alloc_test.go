package core

import (
	"fmt"
	"testing"

	"snaple/internal/graph"
	"snaple/internal/randx"
)

// allocTestGraph builds a deterministic graph with hubs (so truncation and
// k_local sampling both trigger) for the allocation-regression tests.
func allocTestGraph(t testing.TB, n int) *graph.Digraph {
	t.Helper()
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			p := 0.12
			if u%20 == 0 {
				p = 0.5 // hubs: degree well past ThrGamma below
			}
			if randx.Float64(99, uint64(u), uint64(v)) < p {
				edges = append(edges, graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)})
			}
		}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestStepFunctionsAllocationFree pins the arena contract of the per-vertex
// step primitives: once the arenas are built and the scratch buffers are
// warm, a full pass of every fill/append function over the graph performs
// zero heap allocations (the point of the flat-arena hot path — on a
// billion-edge run the old slice-of-slices layout allocated per vertex per
// step).
func TestStepFunctionsAllocationFree(t *testing.T) {
	g := allocTestGraph(t, 80)
	for _, tc := range []struct {
		policy SelectionPolicy
		paths  int
	}{
		{SelectMax, 2},
		{SelectMin, 2},
		{SelectRnd, 2},
		{SelectMax, 3},
	} {
		t.Run(fmt.Sprintf("policy=%v/paths=%d", tc.policy, tc.paths), func(t *testing.T) {
			spec, err := ScoreByName("linearSum", 0.9)
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{Score: spec, K: 5, KLocal: 4, ThrGamma: 8,
				Policy: tc.policy, Paths: tc.paths, Seed: 7}
			r, err := NewStepRunner(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			n := g.NumVertices()
			s := r.NewScratch()

			// Build the arenas once; the measured region refills them.
			trunc, sims := runSteps12(r, n, s)
			twoHop := NewArena[PathCand](n)
			if tc.paths == 3 {
				for v := 0; v < n; v++ {
					twoHop.SetCount(graph.VertexID(v), r.TwoHopCount(graph.VertexID(v), sims))
				}
				twoHop.FinishCounts()
			}
			buf := make([]Prediction, 0, n*cfg.K)

			allocs := testing.AllocsPerRun(5, func() {
				buf = buf[:0]
				for u := 0; u < n; u++ {
					uid := graph.VertexID(u)
					r.TruncateFill(uid, trunc.Row(uid), s)
					r.RelaysFill(uid, trunc, sims.Row(uid), s)
				}
				for u := 0; u < n; u++ {
					uid := graph.VertexID(u)
					if tc.paths == 3 {
						r.TwoHopFill(uid, sims, twoHop.Row(uid))
						buf = r.Combine3Append(uid, trunc, sims, twoHop, s, buf)
					} else {
						buf = r.CombineAppend(uid, trunc, sims, s, buf)
					}
				}
			})
			if allocs != 0 {
				t.Errorf("steady-state pass allocated %.1f times per run, want 0", allocs)
			}
		})
	}
}

// TestStepFunctionsAllocationFreeOverlay pins the same steady-state
// contract on the overlay slow path: a StepRunner over a graph.Delta with
// pending mutations merges rows through the Scratch's reused buffer, so
// once warm it too performs zero allocations per pass.
func TestStepFunctionsAllocationFreeOverlay(t *testing.T) {
	base := allocTestGraph(t, 80)
	v := func(u int) graph.VertexID { return graph.VertexID(u) }
	d, err := graph.NewDelta(base).Apply(
		[]graph.Edge{{Src: v(1), Dst: v(70)}, {Src: v(20), Dst: v(3)}},
		[]graph.Edge{{Src: v(0), Dst: base.OutNeighbors(0)[0]}},
	)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ScoreByName("linearSum", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Score: spec, K: 5, KLocal: 4, ThrGamma: 8, Seed: 7}
	r, err := NewStepRunner(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := d.NumVertices()
	s := r.NewScratch()
	trunc, sims := runSteps12(r, n, s)
	buf := make([]Prediction, 0, n*cfg.K)
	allocs := testing.AllocsPerRun(5, func() {
		buf = buf[:0]
		for u := 0; u < n; u++ {
			uid := graph.VertexID(u)
			r.TruncateFill(uid, trunc.Row(uid), s)
			r.RelaysFill(uid, trunc, sims.Row(uid), s)
		}
		for u := 0; u < n; u++ {
			buf = r.CombineAppend(graph.VertexID(u), trunc, sims, s, buf)
		}
	})
	if allocs != 0 {
		t.Errorf("overlay steady-state pass allocated %.1f times per run, want 0", allocs)
	}
}

// TestCountPassesMatchFills pins the count/fill contract: the count pass
// must predict the fill pass's row sizes exactly for every vertex (the
// arena protocol writes rows with no slack).
func TestCountPassesMatchFills(t *testing.T) {
	g := allocTestGraph(t, 60)
	spec, err := ScoreByName("geomSum", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Score: spec, K: 5, KLocal: 3, ThrGamma: 6, Paths: 3, Seed: 3}
	r, err := NewStepRunner(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	s := r.NewScratch()
	trunc, sims := runSteps12(r, n, s)
	for u := 0; u < n; u++ {
		uid := graph.VertexID(u)
		if got, want := r.TruncateCount(uid, s), len(trunc.Row(uid)); got != want {
			t.Errorf("TruncateCount(%d) = %d, row length %d", u, got, want)
		}
		if got, want := r.RelayCount(uid), len(sims.Row(uid)); got != want {
			t.Errorf("RelayCount(%d) = %d, row length %d", u, got, want)
		}
	}
	// TwoHopCount is validated against a straightforward recount of the
	// nested fill loop.
	for v := 0; v < n; v++ {
		vid := graph.VertexID(v)
		want := 0
		for _, zs := range sims.Row(vid) {
			for _, ws := range sims.Row(zs.V) {
				if ws.V != vid {
					want++
				}
			}
		}
		if got := r.TwoHopCount(vid, sims); got != want {
			t.Errorf("TwoHopCount(%d) = %d, want %d", v, got, want)
		}
	}
}
