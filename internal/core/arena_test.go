package core

import (
	"reflect"
	"testing"

	"snaple/internal/graph"
)

func TestArenaBuildProtocol(t *testing.T) {
	a := NewArena[int](4)
	counts := []int{2, 0, 3, 1}
	for u, c := range counts {
		a.SetCount(graph.VertexID(u), c)
	}
	a.FinishCounts()
	if a.Total() != 6 {
		t.Fatalf("Total = %d, want 6", a.Total())
	}
	val := 0
	for u := 0; u < a.NumRows(); u++ {
		row := a.Row(graph.VertexID(u))
		if len(row) != counts[u] {
			t.Fatalf("row %d length %d, want %d", u, len(row), counts[u])
		}
		for i := range row {
			row[i] = val
			val++
		}
	}
	if got := a.Row(2); !reflect.DeepEqual(got, []int{2, 3, 4}) {
		t.Errorf("Row(2) = %v", got)
	}
	if got := a.Row(1); len(got) != 0 || got == nil {
		t.Errorf("empty row should be non-nil zero-length, got %#v", got)
	}
}
