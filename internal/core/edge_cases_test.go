package core

import (
	"testing"

	"snaple/internal/cluster"
	"snaple/internal/graph"
	"snaple/internal/partition"
)

// TestDegenerateGraphs: the full distributed pipeline must handle empty and
// near-empty graphs without panicking or predicting anything.
func TestDegenerateGraphs(t *testing.T) {
	cases := []struct {
		name  string
		build func() *graph.Digraph
	}{
		{"empty", func() *graph.Digraph { return graph.MustFromEdges(0, nil) }},
		{"isolated vertices", func() *graph.Digraph { return graph.MustFromEdges(5, nil) }},
		{"single edge", func() *graph.Digraph {
			return graph.MustFromEdges(2, []graph.Edge{{Src: 0, Dst: 1}})
		}},
		{"self loops only", func() *graph.Digraph {
			b := graph.NewBuilder(3).KeepSelfLoops(true)
			b.AddEdge(0, 0)
			b.AddEdge(1, 1)
			g, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
		{"two-cycle", func() *graph.Digraph {
			return graph.MustFromEdges(2, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build()
			cfg := Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 5, Seed: 1}

			ref, err := ReferenceSnaple(g, cfg)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			assign, err := partition.HashEdge{}.Partition(g, 2)
			if err != nil {
				t.Fatal(err)
			}
			cl, err := cluster.New(cluster.Config{Nodes: 1, Spec: cluster.TypeI()}, 2)
			if err != nil {
				t.Fatal(err)
			}
			res, err := PredictGAS(g, assign, cl, cfg)
			if err != nil {
				t.Fatalf("distributed: %v", err)
			}
			predictionsEqual(t, res.Pred, ref, tc.name)
			// None of these graphs have any 2-hop candidate outside Γ ∪ {u}
			// — except the two-cycle, where 0→1→0 is excluded as self.
			for u, ps := range res.Pred {
				if len(ps) != 0 {
					t.Errorf("vertex %d got predictions %v on a degenerate graph", u, ps)
				}
			}
		})
	}
}

// TestBaselineDegenerate: same for the BASELINE pipeline.
func TestBaselineDegenerate(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{Src: 0, Dst: 1}})
	assign, err := partition.HashEdge{}.Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{Nodes: 1, Spec: cluster.TypeI()}, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PredictBaselineGAS(g, assign, cl, 5)
	if err != nil {
		t.Fatal(err)
	}
	for u, ps := range res.Pred {
		if len(ps) != 0 {
			t.Errorf("vertex %d got %v", u, ps)
		}
	}
}

// TestHighKLocalOnTinyGraph: KLocal larger than any degree behaves like
// unlimited.
func TestHighKLocalOnTinyGraph(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3},
	})
	limited := Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: 1000, Seed: 2}
	unlimited := Config{Score: mustScore(t, "linearSum"), K: 5, KLocal: Unlimited, Seed: 2}
	a, err := ReferenceSnaple(g, limited)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReferenceSnaple(g, unlimited)
	if err != nil {
		t.Fatal(err)
	}
	for u := range a {
		if len(a[u]) != len(b[u]) {
			t.Fatalf("vertex %d: %v vs %v", u, a[u], b[u])
		}
		for i := range a[u] {
			if a[u][i] != b[u][i] {
				t.Fatalf("vertex %d differs: %v vs %v", u, a[u], b[u])
			}
		}
	}
}
