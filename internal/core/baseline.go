package core

import (
	"cmp"
	"fmt"
	"slices"

	"snaple/internal/cluster"
	"snaple/internal/gas"
	"snaple/internal/graph"
	"snaple/internal/partition"
	"snaple/internal/topk"
)

// BASELINE is the comparison system of Section 5.3: Algorithm 1 implemented
// directly on the GAS engine with Jaccard scoring and the 2-hop candidate
// optimisation. Because the GAS model only exposes adjacent vertices, the
// neighbourhood Γ(z) of every 2-hop candidate z must be propagated hop by
// hop (Figure 1): step 1 collects Γ(u) at u, step 2 replicates each
// neighbour's full neighbourhood onto u, and step 3 forwards those onto the
// 2-hop sources, which finally hold enough state to evaluate
// Jaccard(Γ(u), Γ(z)). The redundant transfers and storage this causes are
// the point — they are what exhausts memory on large graphs.

// nbrList is a neighbour's identity with its full neighbourhood.
type nbrList struct {
	V    graph.VertexID
	Nbrs []graph.VertexID
}

// bdata is BASELINE's per-vertex state.
type bdata struct {
	Nbrs []graph.VertexID // Γ(u), sorted
	Two  []nbrList        // (v, Γ(v)) for each direct neighbour v, sorted by V
	Pred []Prediction
}

func bdataBytes(d *bdata) int64 {
	n := int64(24) + 4*int64(len(d.Nbrs)) + 12*int64(len(d.Pred))
	for i := range d.Two {
		n += 8 + 4*int64(len(d.Two[i].Nbrs))
	}
	return n
}

func nbrListsBytes(ls []nbrList) int64 {
	var n int64
	for i := range ls {
		n += 8 + 4*int64(len(ls[i].Nbrs))
	}
	return n
}

// ---- Step 1: collect the full neighbourhood (no truncation). ----

type bstep1 struct{}

// Direction implements gas.Program.
func (bstep1) Direction() gas.Direction { return gas.Out }

// Gather emits {v}.
func (bstep1) Gather(_, dst graph.VertexID, _, _ *bdata, _ *struct{}) ([]graph.VertexID, bool) {
	return []graph.VertexID{dst}, true
}

// Sum implements gas.Program.
func (bstep1) Sum(a, b []graph.VertexID) []graph.VertexID { return append(a, b...) }

// Apply implements gas.Program.
func (bstep1) Apply(_ graph.VertexID, d *bdata, sum []graph.VertexID, has bool) {
	if !has {
		d.Nbrs = nil
		return
	}
	nbrs := append([]graph.VertexID(nil), sum...)
	slices.Sort(nbrs)
	d.Nbrs = nbrs
}

// VertexBytes implements gas.Program.
func (bstep1) VertexBytes(d *bdata) int64 { return bdataBytes(d) }

// GatherBytes implements gas.Program.
func (bstep1) GatherBytes(g []graph.VertexID) int64 { return 4 * int64(len(g)) }

// ---- Step 2: replicate each neighbour's neighbourhood onto u. ----

type bstep2 struct{}

// Direction implements gas.Program.
func (bstep2) Direction() gas.Direction { return gas.Out }

// Gather emits (v, Γ(v)) — the full neighbour list travels the edge, the
// data flow equation (7) warns about.
func (bstep2) Gather(_, dst graph.VertexID, _, dstD *bdata, _ *struct{}) ([]nbrList, bool) {
	return []nbrList{{V: dst, Nbrs: dstD.Nbrs}}, true
}

// Sum implements gas.Program.
func (bstep2) Sum(a, b []nbrList) []nbrList { return append(a, b...) }

// Apply implements gas.Program.
func (bstep2) Apply(_ graph.VertexID, d *bdata, sum []nbrList, has bool) {
	if !has {
		d.Two = nil
		return
	}
	two := append([]nbrList(nil), sum...)
	slices.SortFunc(two, func(a, b nbrList) int { return cmp.Compare(a.V, b.V) })
	d.Two = two
}

// VertexBytes implements gas.Program.
func (bstep2) VertexBytes(d *bdata) int64 { return bdataBytes(d) }

// GatherBytes implements gas.Program.
func (bstep2) GatherBytes(g []nbrList) int64 { return nbrListsBytes(g) }

// ---- Step 3: forward 2-hop neighbourhoods and score. ----

type bstep3 struct{ k int }

// Direction implements gas.Program.
func (bstep3) Direction() gas.Direction { return gas.Out }

// Gather forwards the neighbour's stored (z, Γ(z)) map to u.
func (bstep3) Gather(_, _ graph.VertexID, _, dstD *bdata, _ *struct{}) ([]nbrList, bool) {
	if len(dstD.Two) == 0 {
		return nil, false
	}
	return dstD.Two, true
}

// Sum implements gas.Program. Duplicated candidates (z reachable through
// several neighbours) are deduplicated in Apply; carrying them until then is
// exactly the redundant transfer of the naive approach.
func (bstep3) Sum(a, b []nbrList) []nbrList { return append(a, b...) }

// Apply scores every distinct 2-hop candidate with Jaccard on the full
// neighbourhoods and keeps the top k (Algorithm 1, line 2 restricted to
// Γ²(u) \ Γ(u)).
func (s bstep3) Apply(u graph.VertexID, d *bdata, sum []nbrList, has bool) {
	if !has {
		d.Pred = nil
		return
	}
	coll := topk.New(s.k)
	seen := make(map[graph.VertexID]struct{}, len(sum))
	var jac Jaccard
	for i := range sum {
		z := sum[i].V
		if z == u || containsVertex(d.Nbrs, z) {
			continue
		}
		if _, dup := seen[z]; dup {
			continue
		}
		seen[z] = struct{}{}
		coll.Push(uint32(z), jac.Score(d.Nbrs, sum[i].Nbrs, 0, 0))
	}
	items := coll.Result()
	if len(items) == 0 {
		d.Pred = nil
		return
	}
	pred := make([]Prediction, len(items))
	for i, it := range items {
		pred[i] = Prediction{Vertex: graph.VertexID(it.ID), Score: it.Score}
	}
	d.Pred = pred
}

// VertexBytes implements gas.Program.
func (bstep3) VertexBytes(d *bdata) int64 { return bdataBytes(d) }

// GatherBytes implements gas.Program.
func (bstep3) GatherBytes(g []nbrList) int64 { return nbrListsBytes(g) }

// PredictBaselineGAS runs the BASELINE system on the distributed engine.
// k is the number of predictions per vertex. On large graphs with bounded
// node memory this returns an error wrapping cluster.ErrMemoryExhausted —
// reproducing the paper's "naive GraphLab version fails due to resource
// exhaustion".
func PredictBaselineGAS(g graph.View, assign partition.Assignment, cl *cluster.Cluster, k int) (*Result, error) {
	return PredictBaselineGASWorkers(g, assign, cl, k, 0)
}

// PredictBaselineGASWorkers is PredictBaselineGAS with an explicit bound on
// the number of partitions processed concurrently (0 = GOMAXPROCS). As with
// PredictGASWorkers, the bound only affects host wall-clock time.
func PredictBaselineGASWorkers(g graph.View, assign partition.Assignment, cl *cluster.Cluster, k, workers int) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: baseline k=%d, need >= 1", k)
	}
	dg, err := gas.Distribute[bdata, struct{}](g, assign, cl, gas.Options{Workers: workers})
	if err != nil {
		return nil, err
	}
	res := &Result{ReplicationFactor: dg.ReplicationFactor()}

	s1, err := gas.RunStep[bdata, struct{}, []graph.VertexID](dg, bstep1{})
	res.record(s1)
	if err != nil {
		return res, fmt.Errorf("baseline step 1: %w", err)
	}
	s2, err := gas.RunStep[bdata, struct{}, []nbrList](dg, bstep2{})
	res.record(s2)
	if err != nil {
		return res, fmt.Errorf("baseline step 2: %w", err)
	}
	s3, err := gas.RunStep[bdata, struct{}, []nbrList](dg, bstep3{k: k})
	res.record(s3)
	if err != nil {
		return res, fmt.Errorf("baseline step 3: %w", err)
	}

	res.Pred = make(Predictions, g.NumVertices())
	dg.ForEachMaster(func(v graph.VertexID, d *bdata) {
		if len(d.Pred) > 0 {
			res.Pred[v] = d.Pred
		}
	})
	return res, nil
}
