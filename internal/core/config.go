package core

import (
	"fmt"

	"snaple/internal/graph"
	"snaple/internal/randx"
)

// SelectionPolicy chooses which k_local neighbours each vertex keeps as path
// relays at the end of step 2 (Section 5.6 compares the three).
type SelectionPolicy int

const (
	// SelectMax keeps the k_local most similar neighbours (Γmax, the
	// paper's default and best performer).
	SelectMax SelectionPolicy = iota
	// SelectMin keeps the k_local least similar neighbours (Γmin).
	SelectMin
	// SelectRnd keeps k_local neighbours drawn uniformly (Γrnd),
	// deterministically keyed by the run seed.
	SelectRnd
)

// String implements fmt.Stringer.
func (p SelectionPolicy) String() string {
	switch p {
	case SelectMax:
		return "max"
	case SelectMin:
		return "min"
	case SelectRnd:
		return "rnd"
	default:
		return fmt.Sprintf("SelectionPolicy(%d)", int(p))
	}
}

// PolicyByName maps the CLI/API spelling of a selection policy ("max",
// "min", "rnd"; "" defaults to "max") onto its SelectionPolicy. It is the
// single parser shared by the public Options, cmd/snaple-serve and every
// other string-typed entry point.
func PolicyByName(name string) (SelectionPolicy, error) {
	switch name {
	case "", "max":
		return SelectMax, nil
	case "min":
		return SelectMin, nil
	case "rnd":
		return SelectRnd, nil
	default:
		return 0, fmt.Errorf("core: unknown policy %q (max|min|rnd)", name)
	}
}

// Unlimited disables a sampling parameter (the paper's ∞ rows in Table 5).
const Unlimited = 0

// Config parameterises a SNAPLE prediction run (Algorithm 2's inputs).
type Config struct {
	// Score is the scoring configuration (Table 3). Required.
	Score ScoreSpec
	// K is the number of predictions returned per vertex (default 5, the
	// paper's fixed choice outside Figure 9).
	K int
	// KLocal bounds the per-vertex neighbour sample used as path relays;
	// Unlimited (0) disables sampling.
	KLocal int
	// ThrGamma is the neighbourhood truncation threshold thrΓ; Unlimited
	// (0) disables truncation. The paper defaults to 200.
	ThrGamma int
	// Policy selects how the KLocal relays are chosen (default SelectMax).
	Policy SelectionPolicy
	// Paths is the maximum path length explored: 2 (the paper's setting,
	// default) or 3 (the footnote-2 extension; candidate space grows to
	// k_local³, so use small KLocal values).
	Paths int
	// Seed drives truncation and the Γrnd policy.
	Seed uint64
	// Sources optionally scopes the run to a query frontier: when
	// non-empty, only these vertices receive predictions and only the
	// closure their step programs read (see NewFrontier) is computed — the
	// online per-user shape served by cmd/snaple-serve. Empty means a full
	// run over every vertex. Duplicates are deduplicated; a source outside
	// the graph's vertex range fails the run. Scoped predictions are
	// bit-identical to the full run's, filtered to the sources, on every
	// backend.
	Sources []graph.VertexID
}

// withDefaults fills zero fields that have non-zero defaults.
func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 5
	}
	if c.Paths == 0 {
		c.Paths = 2
	}
	return c
}

// Normalized returns the config with defaults filled, plus any validation
// error. Callers that do expensive setup before running (e.g. partitioning
// a graph) use it to fail fast on invalid configs.
func (c Config) Normalized() (Config, error) {
	c = c.withDefaults()
	return c, c.Validate()
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Score.Validate(); err != nil {
		return err
	}
	switch {
	case c.K < 1:
		return fmt.Errorf("core: K=%d, need >= 1", c.K)
	case c.KLocal < 0:
		return fmt.Errorf("core: KLocal=%d, need >= 0", c.KLocal)
	case c.ThrGamma < 0:
		return fmt.Errorf("core: ThrGamma=%d, need >= 0", c.ThrGamma)
	case c.Policy != SelectMax && c.Policy != SelectMin && c.Policy != SelectRnd:
		return fmt.Errorf("core: unknown selection policy %d", int(c.Policy))
	case c.Paths != 0 && c.Paths != 2 && c.Paths != 3:
		return fmt.Errorf("core: Paths=%d, supported values are 2 and 3", c.Paths)
	}
	return nil
}

// Prediction is one recommended edge target with its score.
type Prediction struct {
	Vertex graph.VertexID
	Score  float64
}

// Predictions holds the per-vertex prediction lists, indexed by vertex ID;
// vertices without predictions have nil entries.
type Predictions [][]Prediction

// keepTruncated reports whether the truncation of Algorithm 2 (line 3)
// retains neighbour v of vertex u whose out-degree is deg. The decision is a
// hash draw keyed by (seed, u, v), so it is independent of evaluation order
// and identical across the distributed and serial implementations.
func keepTruncated(seed uint64, u, v graph.VertexID, deg, thr int) bool {
	if thr == Unlimited || deg <= thr {
		return true
	}
	return randx.Float64(seed^truncSalt, uint64(u), uint64(v)) < float64(thr)/float64(deg)
}

const (
	truncSalt  = 0x51AF1E01
	rndSelSalt = 0x51AF1E02
)
