package core

import (
	"cmp"
	"slices"

	"snaple/internal/gas"
	"snaple/internal/graph"
)

// 3-hop path extension.
//
// Footnote 2 of the paper: "We limit ourselves to 2-hop paths, but this
// approach can be extended to longer paths by recursively applying ⊗ to the
// raw similarities of individual edges (in functional terms, essentially
// executing a fold operation on the raw similarity values along the path)."
//
// This file implements that extension for 3-hop paths. The fold is applied
// right-associatively — sim*(u→v→z→w) = sim(u,v) ⊗ (sim(v,z) ⊗ sim(z,w)) —
// because that is the shape the GAS model can evaluate with adjacent-only
// access: every vertex v first materialises its own 2-hop path list
// (step 3a), and the final step (3b) extends each neighbour's list by one
// edge. For associative combinators the direction is irrelevant; for the
// linear combinator it is a definition choice, documented here.
//
// The candidate set becomes Γ²(u) ∪ Γ³(u) (minus Γ̂(u) ∪ {u}), sampled
// through the same k_local relays, and the aggregation folds 2-hop and
// 3-hop path-similarities of a candidate together. The candidate space
// grows to O(k_local³); use small k_local values.

// step3a materialises at every vertex v its sampled 2-hop path list
// {(w, sim(v,z) ⊗ sim(z,w)) : z ∈ sims(v), w ∈ sims(z), w ≠ v}.
type step3a struct{ *snapleState }

// Direction implements gas.Program.
func (step3a) Direction() gas.Direction { return gas.Out }

// Gather emits v's 2-hop paths through the edge (v,z); only edges to
// relays contribute.
func (s step3a) Gather(src, dst graph.VertexID, srcD, dstD *VData, _ *struct{}) ([]PathCand, bool) {
	if !s.frontier.InTwoHop(src) {
		return nil, false
	}
	svz, ok := lookupSim(srcD.Sims, dst)
	if !ok || len(dstD.Sims) == 0 {
		return nil, false
	}
	comb := s.cfg.Score.Comb.Fn
	out := make([]PathCand, 0, len(dstD.Sims))
	for _, ws := range dstD.Sims {
		if ws.V == src {
			continue
		}
		out = append(out, PathCand{Z: ws.V, S: comb(svz, ws.Sim)})
	}
	if len(out) == 0 {
		return nil, false
	}
	return out, true
}

// Sum merges sorted path lists (same as step 3).
func (step3a) Sum(a, b []PathCand) []PathCand { return step3{}.Sum(a, b) }

// Apply stores the flat 2-hop path list, sorted by candidate.
func (step3a) Apply(_ graph.VertexID, d *VData, sum []PathCand, has bool) {
	if !has {
		d.TwoHop = nil
		return
	}
	d.TwoHop = append([]PathCand(nil), sum...)
}

// VertexBytes implements gas.Program.
func (step3a) VertexBytes(v *VData) int64 { return vdataBytes(v) }

// GatherBytes prices the flat per-path list (12 B per path): unlike the
// final step, the intermediate list cannot be pre-folded because each entry
// extends differently in step 3b.
func (step3a) GatherBytes(g []PathCand) int64 { return 12 * int64(len(g)) }

// step3b combines 2-hop and 3-hop paths into final predictions.
type step3b struct{ *snapleState }

// Direction implements gas.Program.
func (step3b) Direction() gas.Direction { return gas.Out }

// Gather emits, for the edge (u,v) with relay v: the 2-hop paths u→v→z and
// the 3-hop paths u→v→(z→w) obtained by extending v's stored 2-hop list.
func (s step3b) Gather(src, dst graph.VertexID, srcD, dstD *VData, _ *struct{}) ([]PathCand, bool) {
	if !s.frontier.InPred(src) {
		return nil, false
	}
	suv, ok := lookupSim(srcD.Sims, dst)
	if !ok {
		return nil, false
	}
	comb := s.cfg.Score.Comb.Fn
	out := make([]PathCand, 0, len(dstD.Sims)+len(dstD.TwoHop))
	for _, zs := range dstD.Sims {
		if zs.V == src || containsVertex(srcD.Nbrs, zs.V) {
			continue
		}
		out = append(out, PathCand{Z: zs.V, S: comb(suv, zs.Sim)})
	}
	for _, pc := range dstD.TwoHop {
		if pc.Z == src || containsVertex(srcD.Nbrs, pc.Z) {
			continue
		}
		out = append(out, PathCand{Z: pc.Z, S: comb(suv, pc.S)})
	}
	if len(out) == 0 {
		return nil, false
	}
	// Contributions interleave Sims and TwoHop candidates: restore Z order.
	slices.SortStableFunc(out, func(a, b PathCand) int { return cmp.Compare(a.Z, b.Z) })
	return out, true
}

// Sum merges sorted path lists.
func (step3b) Sum(a, b []PathCand) []PathCand { return step3{}.Sum(a, b) }

// Apply aggregates per candidate and selects the top-k (same as step 3).
func (s step3b) Apply(u graph.VertexID, d *VData, sum []PathCand, has bool) {
	step3{s.snapleState}.Apply(u, d, sum, has)
}

// VertexBytes implements gas.Program.
func (step3b) VertexBytes(v *VData) int64 { return vdataBytes(v) }

// GatherBytes prices per distinct candidate like the final 2-hop step.
func (step3b) GatherBytes(g []PathCand) int64 { return step3{}.GatherBytes(g) }

// ReferenceSnaple3Hop is the serial oracle for the 3-hop extension,
// bit-identical to the distributed pipeline (steps 1, 2, 3a, 3b) and to the
// parallel shared-memory backend.
func ReferenceSnaple3Hop(g graph.View, cfg Config) (Predictions, error) {
	r, err := NewStepRunner(g, cfg)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	s := r.NewScratch()

	// Steps 1-2 shared with the 2-hop reference.
	trunc, sims := runSteps12(r, n, s)

	// Step 3a: per-vertex 2-hop path lists, in a flat arena (scoped runs
	// visit only the sources' relays).
	f := r.Frontier()
	twoHop := NewArena[PathCand](n)
	eachScoped(n, f.StepSet(DistTwoHop), func(v graph.VertexID) {
		twoHop.SetCount(v, r.TwoHopCount(v, sims))
	})
	twoHop.FinishCounts()
	eachScoped(n, f.StepSet(DistTwoHop), func(v graph.VertexID) {
		r.TwoHopFill(v, sims, twoHop.Row(v))
	})

	// Step 3b: final aggregation over 2- and 3-hop paths.
	pred := make(Predictions, n)
	var buf []Prediction
	eachScoped(n, f.StepSet(DistCombine3), func(u graph.VertexID) {
		start := len(buf)
		buf = r.Combine3Append(u, trunc, sims, twoHop, s, buf)
		if len(buf) > start {
			pred[u] = buf[start:len(buf):len(buf)]
		}
	})
	return pred, nil
}
