// Package core implements SNAPLE, the paper's contribution: a link-prediction
// scoring framework built from a raw vertex similarity, a path combinator ⊗
// and a path aggregator ⊕ (Section 3). Algorithm 2 is decomposed into
// per-vertex step primitives (steps.go) consumed by every execution backend
// of internal/engine: the serial reference loop (the test oracle), the
// parallel shared-memory backend, and the three-superstep GAS program of the
// simulated cluster (Section 4). The package also contains the BASELINE
// comparison system (a direct 2-hop implementation of Algorithm 1).
package core

import (
	"math"

	"snaple/internal/graph"
)

// Similarity is the raw metric sim(u,v) = f(Γ̂(u), Γ̂(v)) of equation (6).
// Implementations receive the (possibly truncated) sorted neighbour lists of
// both endpoints plus their full out-degrees, which lets degree-based metrics
// (PPR's 1/|Γ(v)|) coexist with set-based ones.
type Similarity interface {
	// Name identifies the metric in score specs and reports.
	Name() string
	// Score computes sim(u,v). uNbrs and vNbrs are sorted ascending and must
	// be treated as read-only.
	Score(uNbrs, vNbrs []graph.VertexID, uDeg, vDeg int) float64
}

// gallopRatio is the length skew beyond which intersectionSize switches from
// the linear merge to galloping probes. Power-law degree distributions make
// heavily skewed pairs (a low-degree vertex against a hub) the common case,
// where galloping turns O(|a|+|b|) into O(|short|·log|long|).
const gallopRatio = 16

// intersectionSize counts common elements of two sorted ascending lists,
// choosing between a linear merge and galloping search by length skew. Both
// paths return identical counts (a property test enforces this).
func intersectionSize(a, b []graph.VertexID) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	if len(b) >= gallopRatio*len(a) {
		return intersectGallop(a, b)
	}
	return intersectMerge(a, b)
}

// intersectMerge is the classic two-pointer merge count.
func intersectMerge(a, b []graph.VertexID) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// intersectGallop counts short ∩ long by exponential-then-binary probing into
// the suffix of long that can still contain matches. The probe cursor only
// moves forward, so the whole intersection costs O(|short|·log|long|).
func intersectGallop(short, long []graph.VertexID) int {
	n, lo := 0, 0
	for _, x := range short {
		// Exponential search: find a window (lo+step/2, lo+step] whose upper
		// bound is >= x (or the end of long).
		step := 1
		for lo+step <= len(long) && long[lo+step-1] < x {
			step *= 2
		}
		i, j := lo+step/2, lo+step
		if j > len(long) {
			j = len(long)
		}
		// Binary search for the first index in [i, j) with long[idx] >= x.
		for i < j {
			mid := int(uint(i+j) >> 1)
			if long[mid] < x {
				i = mid + 1
			} else {
				j = mid
			}
		}
		if i == len(long) {
			break
		}
		if long[i] == x {
			n++
			i++
		}
		lo = i
	}
	return n
}

// Jaccard is |Γ(u) ∩ Γ(v)| / |Γ(u) ∪ Γ(v)|, the paper's default raw
// similarity (Salton & McGill).
type Jaccard struct{}

// Name implements Similarity.
func (Jaccard) Name() string { return "jaccard" }

// Score implements Similarity.
func (Jaccard) Score(uNbrs, vNbrs []graph.VertexID, _, _ int) float64 {
	inter := intersectionSize(uNbrs, vNbrs)
	union := len(uNbrs) + len(vNbrs) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// CommonNeighbors is |Γ(u) ∩ Γ(v)|, the simplest Liben-Nowell/Kleinberg
// metric.
type CommonNeighbors struct{}

// Name implements Similarity.
func (CommonNeighbors) Name() string { return "common" }

// Score implements Similarity.
func (CommonNeighbors) Score(uNbrs, vNbrs []graph.VertexID, _, _ int) float64 {
	return float64(intersectionSize(uNbrs, vNbrs))
}

// Cosine is |Γ(u) ∩ Γ(v)| / sqrt(|Γ(u)|·|Γ(v)|).
type Cosine struct{}

// Name implements Similarity.
func (Cosine) Name() string { return "cosine" }

// Score implements Similarity.
func (Cosine) Score(uNbrs, vNbrs []graph.VertexID, _, _ int) float64 {
	if len(uNbrs) == 0 || len(vNbrs) == 0 {
		return 0
	}
	inter := intersectionSize(uNbrs, vNbrs)
	return float64(inter) / math.Sqrt(float64(len(uNbrs))*float64(len(vNbrs)))
}

// Overlap is |Γ(u) ∩ Γ(v)| / min(|Γ(u)|, |Γ(v)|).
type Overlap struct{}

// Name implements Similarity.
func (Overlap) Name() string { return "overlap" }

// Score implements Similarity.
func (Overlap) Score(uNbrs, vNbrs []graph.VertexID, _, _ int) float64 {
	m := len(uNbrs)
	if len(vNbrs) < m {
		m = len(vNbrs)
	}
	if m == 0 {
		return 0
	}
	return float64(intersectionSize(uNbrs, vNbrs)) / float64(m)
}

// InverseDegree is 1/|Γ(v)|, the per-edge transition probability of a random
// walk; combined with the sum combinator and Sum aggregator it yields the
// paper's PPR-like score (Table 3, grey row).
type InverseDegree struct{}

// Name implements Similarity.
func (InverseDegree) Name() string { return "invdeg" }

// Score implements Similarity.
func (InverseDegree) Score(_, _ []graph.VertexID, _, vDeg int) float64 {
	if vDeg <= 0 {
		return 0
	}
	return 1 / float64(vDeg)
}

var (
	_ Similarity = Jaccard{}
	_ Similarity = CommonNeighbors{}
	_ Similarity = Cosine{}
	_ Similarity = Overlap{}
	_ Similarity = InverseDegree{}
)
