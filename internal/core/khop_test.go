package core

import (
	"testing"

	"snaple/internal/graph"
)

func TestThreeHopFindsDistantCandidates(t *testing.T) {
	// Path graph 0->1->2->3->4: with 2-hop paths, vertex 0 can only reach
	// candidate 2; with the 3-hop extension it also reaches 3.
	g := graph.MustFromEdges(5, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4},
	})
	base := Config{Score: mustScore(t, "counter"), K: 5, Seed: 1}

	two, err := ReferenceSnaple(g, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(two[0]) != 1 || two[0][0].Vertex != 2 {
		t.Fatalf("2-hop predictions for 0: %+v, want just vertex 2", two[0])
	}

	cfg3 := base
	cfg3.Paths = 3
	three, err := ReferenceSnaple(g, cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if len(three[0]) != 2 {
		t.Fatalf("3-hop predictions for 0: %+v, want vertices 2 and 3", three[0])
	}
	found := map[graph.VertexID]bool{}
	for _, p := range three[0] {
		found[p.Vertex] = true
	}
	if !found[2] || !found[3] {
		t.Errorf("3-hop should reach 2 and 3, got %+v", three[0])
	}
}

func TestThreeHopGASMatchesSerial(t *testing.T) {
	g := communityGraph(t, 300, 91)
	cases := []Config{
		{Score: mustScore(t, "linearSum"), K: 5, KLocal: 5, Paths: 3, Seed: 1},
		{Score: mustScore(t, "counter"), K: 5, KLocal: 4, Paths: 3, Seed: 2},
		{Score: mustScore(t, "geomMean"), K: 5, KLocal: 4, ThrGamma: 10, Paths: 3, Seed: 3},
	}
	for _, cfg := range cases {
		want, err := ReferenceSnaple(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, parts := range []int{1, 5} {
			res := runGAS(t, g, cfg, parts, 2)
			predictionsEqual(t, res.Pred, want, cfg.Score.Name+"-3hop")
		}
	}
}

func TestThreeHopCandidateBound(t *testing.T) {
	// Candidates <= klocal^2 + klocal^3 per vertex.
	g := communityGraph(t, 400, 93)
	const klocal = 3
	cfg := Config{Score: mustScore(t, "linearSum"), K: 1 << 20, KLocal: klocal, Paths: 3, Seed: 4}
	pred, err := ReferenceSnaple(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bound := klocal*klocal + klocal*klocal*klocal
	for u, ps := range pred {
		if len(ps) > bound {
			t.Fatalf("vertex %d has %d candidates > bound %d", u, len(ps), bound)
		}
	}
}

func TestThreeHopImprovesRecallOnSparseGraphs(t *testing.T) {
	// On a sparse graph the extra hop expands the candidate pool; with the
	// counter score the extension should find at least as many hidden edges.
	// (This mirrors the paper's motivation for exploring longer paths.)
	g := communityGraph(t, 600, 95)
	cfg2 := Config{Score: mustScore(t, "counter"), K: 10, KLocal: 5, Seed: 5}
	cfg3 := cfg2
	cfg3.Paths = 3
	p2, err := ReferenceSnaple(g, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := ReferenceSnaple(g, cfg3)
	if err != nil {
		t.Fatal(err)
	}
	count := func(p Predictions) int {
		n := 0
		for _, ps := range p {
			n += len(ps)
		}
		return n
	}
	if count(p3) < count(p2) {
		t.Errorf("3-hop produced fewer candidates (%d) than 2-hop (%d)", count(p3), count(p2))
	}
}

func TestPathsValidation(t *testing.T) {
	cfg := Config{Score: mustScore(t, "linearSum"), K: 5, Paths: 4}
	if err := cfg.Validate(); err == nil {
		t.Error("Paths=4 accepted")
	}
	cfg.Paths = 2
	if err := cfg.Validate(); err != nil {
		t.Errorf("Paths=2 rejected: %v", err)
	}
}
