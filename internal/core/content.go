package core

import (
	"fmt"

	"snaple/internal/graph"
)

// Content-based similarity extension.
//
// Section 3.1: "This approach can be extended to content-based metrics by
// simply including data attached to vertices in f." This file provides that
// hook: vertex attribute sets (hashed tags, interests, profile tokens) and a
// similarity that blends the topological metric with attribute overlap.
// Because attributes are static vertex metadata — like degrees — they do not
// travel through the engine; both the GAS steps and the serial reference
// read them through the Similarity, so distributed/serial equivalence is
// preserved for free.

// AttributeTable holds one sorted attribute set per vertex.
type AttributeTable [][]uint32

// Validate checks that every attribute set is sorted and duplicate-free.
func (a AttributeTable) Validate() error {
	for v, attrs := range a {
		for i := 1; i < len(attrs); i++ {
			if attrs[i] <= attrs[i-1] {
				return fmt.Errorf("core: attributes of vertex %d not strictly sorted", v)
			}
		}
	}
	return nil
}

// attrJaccard computes Jaccard over two sorted attribute sets.
func attrJaccard(a, b []uint32) float64 {
	i, j, inter := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// IDSimilarity is the optional Similarity extension for metrics that need
// vertex identities (content-based metrics resolve attributes by ID).
// When a ScoreSpec's Sim implements it, the engine and the serial reference
// call ScoreIDs instead of Score.
type IDSimilarity interface {
	Similarity
	ScoreIDs(u, v graph.VertexID, uNbrs, vNbrs []graph.VertexID, uDeg, vDeg int) float64
}

// ContentSimilarity blends a topological base metric with attribute-set
// Jaccard: Beta·base + (1−Beta)·attrJaccard. Beta = 1 reduces to the base
// metric; Beta = 0 is purely content-based.
type ContentSimilarity struct {
	Base  Similarity
	Attrs AttributeTable
	Beta  float64
}

// NewContentSimilarity validates and assembles a content-aware similarity.
func NewContentSimilarity(base Similarity, attrs AttributeTable, beta float64) (*ContentSimilarity, error) {
	if base == nil {
		return nil, fmt.Errorf("core: content similarity needs a base metric")
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("core: content beta=%v outside [0,1]", beta)
	}
	if err := attrs.Validate(); err != nil {
		return nil, err
	}
	return &ContentSimilarity{Base: base, Attrs: attrs, Beta: beta}, nil
}

// Name implements Similarity.
func (c *ContentSimilarity) Name() string {
	return fmt.Sprintf("content(%s,beta=%g)", c.Base.Name(), c.Beta)
}

// Score implements Similarity; without identities only the base metric can
// contribute (content weight falls back to zero overlap).
func (c *ContentSimilarity) Score(uNbrs, vNbrs []graph.VertexID, uDeg, vDeg int) float64 {
	return c.Beta * c.Base.Score(uNbrs, vNbrs, uDeg, vDeg)
}

// ScoreIDs implements IDSimilarity.
func (c *ContentSimilarity) ScoreIDs(u, v graph.VertexID, uNbrs, vNbrs []graph.VertexID, uDeg, vDeg int) float64 {
	topo := c.Base.Score(uNbrs, vNbrs, uDeg, vDeg)
	var ua, va []uint32
	if int(u) < len(c.Attrs) {
		ua = c.Attrs[u]
	}
	if int(v) < len(c.Attrs) {
		va = c.Attrs[v]
	}
	return c.Beta*topo + (1-c.Beta)*attrJaccard(ua, va)
}

var _ IDSimilarity = (*ContentSimilarity)(nil)

// simScore dispatches to ScoreIDs when the metric is identity-aware; the
// single call site shared by step 2 and the references.
func simScore(sim Similarity, u, v graph.VertexID, uNbrs, vNbrs []graph.VertexID, uDeg, vDeg int) float64 {
	if ids, ok := sim.(IDSimilarity); ok {
		return ids.ScoreIDs(u, v, uNbrs, vNbrs, uDeg, vDeg)
	}
	return sim.Score(uNbrs, vNbrs, uDeg, vDeg)
}
