package core

import "snaple/internal/graph"

// Arena is flat CSR-style storage for per-vertex variable-length rows: one
// offsets table plus one shared backing array, mirroring the graph's own
// adjacency layout (SNAP's lesson that compact flat representations, not
// pointer-rich ones, are what scale single-machine analytics). Each step of
// Algorithm 2 materialises its per-vertex output — truncated neighbourhoods,
// relay lists, 2-hop path lists — in one Arena instead of a slice of
// per-vertex slices, so a full pass over the graph costs two allocations
// (offsets + data) rather than one small GC-tracked object per vertex.
//
// Build protocol (two passes, mirroring counting sort):
//
//	a := NewArena[T](n)
//	for u := range n { a.SetCount(u, countFor(u)) }   // pass 1: row sizes
//	a.FinishCounts()                                  // prefix sum + backing array
//	for u := range n { fillInto(a.Row(u)) }           // pass 2: write rows
//
// SetCount calls for distinct vertices touch disjoint offsets and Row
// returns disjoint sub-slices, so both passes parallelise over vertex ranges
// with no synchronisation beyond a barrier around FinishCounts.
type Arena[T any] struct {
	off  []int64 // len n+1; data[off[u]:off[u+1]] is row u after FinishCounts
	data []T
}

// NewArena returns an arena with n empty rows, ready for the count pass.
func NewArena[T any](n int) *Arena[T] {
	return &Arena[T]{off: make([]int64, n+1)}
}

// NumRows returns the number of rows.
func (a *Arena[T]) NumRows() int { return len(a.off) - 1 }

// SetCount records row u's length during the count pass. Concurrent calls
// for distinct vertices are safe.
func (a *Arena[T]) SetCount(u graph.VertexID, c int) { a.off[u+1] = int64(c) }

// FinishCounts turns the recorded counts into offsets (an exclusive prefix
// sum) and allocates the backing array. Call exactly once, between the
// count and fill pass.
func (a *Arena[T]) FinishCounts() {
	var total int64
	for i := 1; i < len(a.off); i++ {
		total += a.off[i]
		a.off[i] = total
	}
	a.data = make([]T, total)
}

// Row returns row u, backed by the shared array. After FinishCounts the fill
// pass writes it; rows of distinct vertices never overlap. Empty rows are
// empty (never nil) slices.
func (a *Arena[T]) Row(u graph.VertexID) []T { return a.data[a.off[u]:a.off[u+1]] }

// Total returns the summed length of all rows (valid after FinishCounts).
func (a *Arena[T]) Total() int { return len(a.data) }
