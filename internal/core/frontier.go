package core

import (
	"fmt"
	mathbits "math/bits"

	"snaple/internal/graph"
)

// Query-scoped prediction.
//
// A full Algorithm 2 run computes predictions for every vertex of the graph
// — the right shape for offline batch scoring, and the only shape this
// repository had before the serving refactor. But SNAPLE's product scenario
// is answering "top-k for *these* users" interactively, and a billion-edge
// graph cannot afford a full pass per query. Config.Sources scopes a run to
// a source frontier: only the sources receive predictions, and only the
// exact ≤2-hop closure their step programs read is computed (≤3-hop for the
// Paths=3 extension).
//
// The closure is derived from the data dependencies of steps.go's
// primitives, which every backend shares:
//
//	Pred   = S                        (step 3 output: the sources themselves)
//	TwoHop = Γ(S)                     (step 3a rows read by step 3b; Paths=3 only)
//	Sims   = S ∪ Γ(S) [∪ Γ(TwoHop)]   (step 2 rows read by steps 3/3a/3b)
//	Trunc  = Sims ∪ Γ(Sims)           (step 1 rows read by step 2's similarities)
//
// where Γ is the out-neighbourhood. Because every step primitive is a pure
// deterministic function of its input rows (hash-keyed draws, sorted folds
// — see steps.go), computing exactly these rows yields predictions for S
// that are bit-identical to a full run filtered to S, on every backend.

// VertexSet is a fixed-universe vertex set: a bitmap for O(1) membership
// plus the sorted member list the scoped vertex loops iterate. Immutable
// after construction.
type VertexSet struct {
	bits    []uint64
	members []graph.VertexID
}

// newBits returns an empty bitmap over [0, n).
func newBits(n int) []uint64 { return make([]uint64, (n+63)/64) }

func bitsContain(bits []uint64, v graph.VertexID) bool {
	return bits[v>>6]&(1<<(v&63)) != 0
}

// bitsAdd sets v's bit and reports whether it was newly set.
func bitsAdd(bits []uint64, v graph.VertexID) bool {
	w, m := v>>6, uint64(1)<<(v&63)
	if bits[w]&m != 0 {
		return false
	}
	bits[w] |= m
	return true
}

// finishSet freezes a bitmap into a VertexSet, materialising the sorted
// member list with one scan (members come out ascending because the scan
// walks words and bits in order).
func finishSet(bits []uint64, size int) *VertexSet {
	members := make([]graph.VertexID, 0, size)
	for w, word := range bits {
		for word != 0 {
			members = append(members, graph.VertexID(w<<6+mathbits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return &VertexSet{bits: bits, members: members}
}

// Contains reports membership. v must lie in the universe the set was built
// over (the graph's vertex range).
func (s *VertexSet) Contains(v graph.VertexID) bool { return bitsContain(s.bits, v) }

// Len returns the member count.
func (s *VertexSet) Len() int { return len(s.members) }

// Members returns the sorted member list. The slice is owned by the set and
// must not be modified.
func (s *VertexSet) Members() []graph.VertexID { return s.members }

// Frontier is the per-step vertex scope of a query-scoped run: which
// vertices each of Algorithm 2's steps must materialise so the sources'
// predictions come out bit-identical to a full run. A nil *Frontier means
// the run is unscoped (full graph); all methods are nil-safe and report
// every vertex as in scope.
type Frontier struct {
	// Pred holds the deduplicated sources: the vertices whose predictions
	// the run computes (step 3 / 3b scope).
	Pred *VertexSet
	// TwoHop is the step-3a scope of the Paths=3 extension — the relays
	// whose 2-hop path lists step 3b reads. Nil when Paths is 2.
	TwoHop *VertexSet
	// Sims is the step-2 scope: vertices whose relay lists some later step
	// reads.
	Sims *VertexSet
	// Trunc is the step-1 scope: vertices whose truncated neighbourhoods
	// step 2's similarities read. It is the full closure (a superset of
	// every other set).
	Trunc *VertexSet
}

// NewFrontier computes the frontier closure of cfg.Sources over g, or nil
// when cfg.Sources is empty (an unscoped full run). It fails when a source
// lies outside the graph's vertex range.
func NewFrontier(g graph.View, cfg Config) (*Frontier, error) {
	if len(cfg.Sources) == 0 {
		return nil, nil
	}
	cfg = cfg.withDefaults()
	n := g.NumVertices()

	predBits := newBits(n)
	npred := 0
	for _, v := range cfg.Sources {
		if int(v) >= n {
			return nil, fmt.Errorf("core: source vertex %d outside [0,%d)", v, n)
		}
		if bitsAdd(predBits, v) {
			npred++
		}
	}
	pred := finishSet(predBits, npred)

	// Sims = Pred ∪ Γ(Pred); the bitmap starts as a copy of Pred's.
	simsBits := make([]uint64, len(predBits))
	copy(simsBits, predBits)
	nsims := npred + expandOut(g, pred.Members(), simsBits)

	f := &Frontier{Pred: pred}
	if cfg.Paths == 3 {
		// Step 3b reads the 2-hop path list of every relay of a source, and
		// step 3a reads the relay lists of a 2-hop vertex's own relays: the
		// closure deepens by one hop.
		twoBits := newBits(n)
		ntwo := expandOut(g, pred.Members(), twoBits)
		f.TwoHop = finishSet(twoBits, ntwo)
		nsims += expandOut(g, f.TwoHop.Members(), simsBits)
	}
	f.Sims = finishSet(simsBits, nsims)

	truncBits := make([]uint64, len(simsBits))
	copy(truncBits, simsBits)
	ntrunc := f.Sims.Len() + expandOut(g, f.Sims.Members(), truncBits)
	f.Trunc = finishSet(truncBits, ntrunc)
	return f, nil
}

// expandOut adds the out-neighbours of every vertex in from to bits,
// returning how many were newly added. Frozen CSRs walk rows directly;
// overlay views merge each row once into a shared buffer.
func expandOut(g graph.View, from []graph.VertexID, bits []uint64) int {
	added := 0
	if csr, ok := graph.AsCSR(g); ok {
		for _, u := range from {
			for _, v := range csr.OutNeighbors(u) {
				if bitsAdd(bits, v) {
					added++
				}
			}
		}
		return added
	}
	var buf []graph.VertexID
	for _, u := range from {
		buf = g.AppendOutRow(buf[:0], u)
		for _, v := range buf {
			if bitsAdd(bits, v) {
				added++
			}
		}
	}
	return added
}

// Size returns the closure's vertex count (the largest set), the number the
// engine layer reports as Stats.FrontierVertices. Nil-safe: 0 for an
// unscoped run.
func (f *Frontier) Size() int {
	if f == nil {
		return 0
	}
	return f.Trunc.Len()
}

// InPred reports whether a scoped run computes predictions for v (always
// true unscoped).
func (f *Frontier) InPred(v graph.VertexID) bool { return f == nil || f.Pred.Contains(v) }

// InSims reports whether step 2 must materialise v's relay list.
func (f *Frontier) InSims(v graph.VertexID) bool { return f == nil || f.Sims.Contains(v) }

// InTrunc reports whether step 1 must materialise v's truncated
// neighbourhood.
func (f *Frontier) InTrunc(v graph.VertexID) bool { return f == nil || f.Trunc.Contains(v) }

// InTwoHop reports whether step 3a must materialise v's 2-hop path list
// (Paths=3 runs only; false for every vertex of a scoped 2-hop run, where
// the step never executes).
func (f *Frontier) InTwoHop(v graph.VertexID) bool {
	if f == nil {
		return true
	}
	return f.TwoHop != nil && f.TwoHop.Contains(v)
}

// Scope-mask bits: the per-vertex frontier membership shipped to dist
// workers (wire.Partition.Scope), one bit per step family. A worker gates
// each superstep's gather on its source's bit, which is all it needs — the
// global sets stay on the coordinator.
const (
	// ScopeTrunc marks gather sources of the truncate superstep.
	ScopeTrunc uint8 = 1 << iota
	// ScopeSims marks gather sources of the relays superstep.
	ScopeSims
	// ScopeTwoHop marks gather sources of the two-hop superstep (Paths=3).
	ScopeTwoHop
	// ScopePred marks gather sources of the final combine superstep.
	ScopePred
)

// ScopeMask returns v's scope bits. Nil-safe: an unscoped run grants every
// step.
func (f *Frontier) ScopeMask(v graph.VertexID) uint8 {
	if f == nil {
		return ScopeTrunc | ScopeSims | ScopeTwoHop | ScopePred
	}
	var m uint8
	if f.Trunc.Contains(v) {
		m |= ScopeTrunc
	}
	if f.Sims.Contains(v) {
		m |= ScopeSims
	}
	if f.TwoHop != nil && f.TwoHop.Contains(v) {
		m |= ScopeTwoHop
	}
	if f.Pred.Contains(v) {
		m |= ScopePred
	}
	return m
}

// ScopeBit returns the scope-mask bit gating s's gather sources.
func (s DistStep) ScopeBit() uint8 {
	switch s {
	case DistTruncate:
		return ScopeTrunc
	case DistRelays:
		return ScopeSims
	case DistTwoHop:
		return ScopeTwoHop
	default: // DistCombine, DistCombine3
		return ScopePred
	}
}

// StepSet returns the frontier set scoping step's gather sources. Nil-safe:
// a nil receiver (unscoped run) returns nil, which the scoped-iteration
// helpers read as "every vertex".
func (f *Frontier) StepSet(step DistStep) *VertexSet {
	if f == nil {
		return nil
	}
	switch step {
	case DistTruncate:
		return f.Trunc
	case DistRelays:
		return f.Sims
	case DistTwoHop:
		return f.TwoHop
	case DistCombine, DistCombine3:
		return f.Pred
	default:
		return nil
	}
}

// StepHasWork reports whether step has any gather source with an out-edge —
// the superstep-skip test: a step whose scope set has no out-edges gathers
// nothing anywhere, and applying nothing writes the same nil state skipping
// leaves behind, so substrates may omit the superstep entirely. deg is the
// full out-degree table. Nil-safe: an unscoped run always has work.
func (f *Frontier) StepHasWork(step DistStep, deg []int32) bool {
	if f == nil {
		return true
	}
	set := f.StepSet(step)
	if set == nil {
		return false
	}
	for _, v := range set.Members() {
		if deg[v] > 0 {
			return true
		}
	}
	return false
}
