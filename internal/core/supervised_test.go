package core

import (
	"math"
	"testing"

	"snaple/internal/graph"
)

func TestPathFeatures(t *testing.T) {
	suv := []float64{0.4, 0.2}
	svz := []float64{0.6, 0.2}
	inv := []float64{0.5, 0.25}
	f := pathFeatures(suv, svz, inv)
	lin := Linear(0.9).Fn
	s1, s2 := lin(0.4, 0.6), lin(0.2, 0.2)
	if math.Abs(f[0]-(s1+s2)) > 1e-12 {
		t.Errorf("linearSum feature = %v, want %v", f[0], s1+s2)
	}
	if f[1] != 2 {
		t.Errorf("count feature = %v", f[1])
	}
	if math.Abs(f[2]-0.75) > 1e-12 {
		t.Errorf("inverse-degree feature = %v", f[2])
	}
	if math.Abs(f[3]-(s1+s2)/2) > 1e-12 {
		t.Errorf("mean feature = %v", f[3])
	}
	if f[4] != math.Max(s1, s2) || f[5] != math.Min(s1, s2) {
		t.Errorf("max/min features = %v/%v", f[4], f[5])
	}
	// Empty path set -> zero vector.
	if pathFeatures(nil, nil, nil) != ([numPathFeatures]float64{}) {
		t.Error("empty features not zero")
	}
}

func TestTrainSupervisedDeterministic(t *testing.T) {
	g := communityGraph(t, 600, 101)
	m1, err := TrainSupervised(g, SupervisedConfig{Seed: 5, Epochs: 50})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := TrainSupervised(g, SupervisedConfig{Seed: 5, Epochs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Weights != m2.Weights || m1.Bias != m2.Bias {
		t.Error("training not deterministic")
	}
	for i, w := range m1.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Errorf("weight %d = %v", i, w)
		}
	}
}

func TestTrainSupervisedErrors(t *testing.T) {
	empty := graph.MustFromEdges(3, nil)
	if _, err := TrainSupervised(empty, SupervisedConfig{}); err == nil {
		t.Error("empty graph accepted")
	}
	// All degrees <= 3: nothing to hide.
	small := graph.MustFromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	if _, err := TrainSupervised(small, SupervisedConfig{}); err == nil {
		t.Error("degenerate graph accepted")
	}
	g := communityGraph(t, 200, 103)
	m, err := TrainSupervised(g, SupervisedConfig{Seed: 1, Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict(g, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestSupervisedPredictionsValid(t *testing.T) {
	g := communityGraph(t, 500, 107)
	m, err := TrainSupervised(g, SupervisedConfig{Seed: 2, Epochs: 50})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	produced := 0
	for u, ps := range pred {
		uid := graph.VertexID(u)
		for _, p := range ps {
			produced++
			if p.Vertex == uid {
				t.Fatalf("vertex %d predicted itself", u)
			}
			if p.Score < 0 || p.Score > 1 {
				t.Fatalf("sigmoid score out of range: %v", p.Score)
			}
		}
	}
	if produced == 0 {
		t.Fatal("no supervised predictions")
	}
}

// TestSupervisedLearnsUsefulSignal: on a held-out evaluation split, the
// learned model's recall should be in the same league as the hand-tuned
// linearSum (the paper expects supervised to eventually *improve* recall;
// here we require it not to collapse, since the model is deliberately
// small).
func TestSupervisedLearnsUsefulSignal(t *testing.T) {
	g := communityGraph(t, 1200, 109)
	// Build an evaluation split by hand (as eval.MakeSplit would, but this
	// package cannot import eval).
	var removed []graph.Edge
	hidden := make(map[graph.VertexID]graph.VertexID)
	for u := 0; u < g.NumVertices(); u++ {
		uid := graph.VertexID(u)
		nbrs := g.OutNeighbors(uid)
		if len(nbrs) <= 3 {
			continue
		}
		pick := nbrs[int(uid)%len(nbrs)]
		hidden[uid] = pick
		removed = append(removed, graph.Edge{Src: uid, Dst: pick})
	}
	train := g.WithoutEdges(removed)

	m, err := TrainSupervised(train, SupervisedConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sup, err := m.Predict(train, 5)
	if err != nil {
		t.Fatal(err)
	}
	uns, err := ReferenceSnaple(train, Config{
		Score: mustScore(t, "linearSum"), K: 5, KLocal: 20, ThrGamma: 200, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	recall := func(pred Predictions) float64 {
		hits := 0
		for u, target := range hidden {
			for _, p := range pred[u] {
				if p.Vertex == target {
					hits++
				}
			}
		}
		return float64(hits) / float64(len(hidden))
	}
	rs, ru := recall(sup), recall(uns)
	t.Logf("supervised recall %.3f, linearSum recall %.3f", rs, ru)
	if rs < 0.6*ru {
		t.Errorf("supervised recall %.3f collapsed vs linearSum %.3f", rs, ru)
	}
}
