package core

import (
	"cmp"
	"slices"

	"snaple/internal/graph"
	"snaple/internal/randx"
	"snaple/internal/topk"
)

// This file factors Algorithm 2's three steps into per-vertex primitives so
// that every execution substrate shares one copy of the scoring logic:
//
//   - the serial reference loop (reference.go),
//   - the GAS step programs of the simulated cluster (snaple.go, khop.go),
//   - the parallel shared-memory backend (internal/engine).
//
// The primitives follow the Arena build protocol (arena.go): every step runs
// a cheap count pass (TruncateCount, RelayCount, TwoHopCount) and then a
// fill pass (TruncateFill, RelaysFill, TwoHopFill) into preallocated rows of
// one flat backing array, so the steady-state loop performs zero heap
// allocations per vertex. Final predictions append into caller-owned buffers
// (CombineAppend, Combine3Append) because their sizes are only known after
// aggregation.
//
// All primitives are deterministic in (graph, Config): truncation and the
// Γrnd selection draw from hashes keyed by (seed, u, v), and aggregation
// folds path values in sorted order (Aggregator.FoldPaths), so every
// substrate produces bit-identical Predictions regardless of scheduling.

// PathCand is one path's contribution to candidate Z: the combined
// path-similarity of equation (8). Lists are kept sorted by Z so grouping is
// a linear scan and merging preserves order.
type PathCand struct {
	Z graph.VertexID
	S float64
}

// sortPathCands orders candidates by Z ascending. Values for the same Z may
// appear in any relative order: FoldPaths sorts them before folding.
func sortPathCands(cands []PathCand) {
	slices.SortFunc(cands, func(a, b PathCand) int { return cmp.Compare(a.Z, b.Z) })
}

// StepRunner exposes Algorithm 2's steps as per-vertex functions over any
// adjacency View. Construct one with NewStepRunner; methods are safe for
// concurrent use as long as each goroutine uses its own Scratch and writes
// to disjoint vertices.
//
// When the view is a frozen CSR the runner pins it in csr and every row
// access is a direct slice view — the monomorphic fast path the alloc tests
// and perf gate measure. Overlay views (graph.Delta) go through AppendOutRow
// into the Scratch's reused row buffer instead, still allocation-free in
// steady state.
type StepRunner struct {
	g        graph.View
	csr      *graph.Digraph // non-nil fast path: g is (or unwraps to) a CSR
	cfg      Config
	deg      []int32   // full out-degrees, static topology metadata
	frontier *Frontier // query scope; nil = full run
}

// NewStepRunner validates cfg, fills defaults, precomputes the degree table
// shared by all steps and — for a query-scoped run (cfg.Sources non-empty)
// — the frontier closure that gates every step primitive.
func NewStepRunner(g graph.View, cfg Config) (*StepRunner, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st := newSnapleState(g, cfg)
	f, err := NewFrontier(g, cfg)
	if err != nil {
		return nil, err
	}
	r := &StepRunner{g: g, cfg: cfg, deg: st.deg, frontier: f}
	r.csr, _ = graph.AsCSR(g)
	return r, nil
}

// outRow returns u's sorted out-neighbour row: a direct CSR slice on the
// frozen-graph fast path, the overlay merge into s.row otherwise. The result
// is valid until the next outRow call on the same Scratch.
func (r *StepRunner) outRow(u graph.VertexID, s *Scratch) []graph.VertexID {
	if r.csr != nil {
		return r.csr.OutNeighbors(u)
	}
	s.row = r.g.AppendOutRow(s.row[:0], u)
	return s.row
}

// Config returns the runner's configuration with defaults applied.
func (r *StepRunner) Config() Config { return r.cfg }

// Frontier returns the run's query scope, or nil for a full run. Scoped
// vertex loops iterate the appropriate set's Members instead of [0, n); the
// step primitives below additionally gate themselves, so a loop that visits
// an out-of-scope vertex anyway writes nothing for it.
func (r *StepRunner) Frontier() *Frontier { return r.frontier }

// Scratch holds the per-worker reusable buffers of the step functions. Each
// concurrent worker needs its own; construct with StepRunner.NewScratch.
type Scratch struct {
	sims    []VertexSim
	cands   []PathCand
	vals    []float64
	items   []topk.Item
	chosen  []graph.VertexID
	row     []graph.VertexID // merged-row buffer for overlay views (outRow)
	coll    *topk.Collector  // top-k predictions (capacity cfg.K)
	selColl *topk.Collector  // k_local relay selection (nil when unlimited)
}

// NewScratch returns a Scratch sized for the runner's configuration.
func (r *StepRunner) NewScratch() *Scratch {
	s := &Scratch{coll: topk.New(r.cfg.K)}
	if r.cfg.KLocal != Unlimited {
		s.selColl = topk.New(r.cfg.KLocal)
	}
	return s
}

// ---- Step 1: truncated neighbourhoods Γ̂ (Algorithm 2, lines 1-6) ----

// TruncateCount returns |Γ̂(u)|, the number of out-neighbours the hash-keyed
// truncation keeps for u (the count pass of step 1). s supplies the merged-row
// buffer when the view is an overlay.
func (r *StepRunner) TruncateCount(u graph.VertexID, s *Scratch) int {
	if !r.frontier.InTrunc(u) {
		return 0
	}
	deg := int(r.deg[u])
	if r.cfg.ThrGamma == Unlimited || deg <= r.cfg.ThrGamma {
		return deg
	}
	n := 0
	for _, v := range r.outRow(u, s) {
		if keepTruncated(r.cfg.Seed, u, v, deg, r.cfg.ThrGamma) {
			n++
		}
	}
	return n
}

// TruncateFill writes Γ̂(u) into dst, which must have length
// TruncateCount(u, s). The result is sorted ascending because it is a
// subsequence of the sorted adjacency. The hash draws repeat the count
// pass's exactly.
func (r *StepRunner) TruncateFill(u graph.VertexID, dst []graph.VertexID, s *Scratch) {
	if !r.frontier.InTrunc(u) {
		return
	}
	nbrs := r.outRow(u, s)
	deg := int(r.deg[u])
	if r.cfg.ThrGamma == Unlimited || deg <= r.cfg.ThrGamma {
		copy(dst, nbrs)
		return
	}
	k := 0
	for _, v := range nbrs {
		if keepTruncated(r.cfg.Seed, u, v, deg, r.cfg.ThrGamma) {
			dst[k] = v
			k++
		}
	}
}

// ---- Step 2: similarities and k_local relay selection (lines 7-11) ----

// RelayCount returns the number of relays step 2 keeps for u: every
// out-neighbour, capped at KLocal when the sampling bound is set. This is
// O(1) — the selection policy only decides which relays survive, never how
// many.
func (r *StepRunner) RelayCount(u graph.VertexID) int {
	if !r.frontier.InSims(u) {
		return 0
	}
	deg := int(r.deg[u])
	if r.cfg.KLocal != Unlimited && deg > r.cfg.KLocal {
		return r.cfg.KLocal
	}
	return deg
}

// RelaysFill runs step 2 for u: raw similarities to every out-neighbour over
// the truncated neighbourhoods of trunc, then the k_local selection policy.
// dst must have length RelayCount(u); the result is sorted by vertex ID.
func (r *StepRunner) RelaysFill(u graph.VertexID, trunc *Arena[graph.VertexID], dst []VertexSim, s *Scratch) {
	if !r.frontier.InSims(u) {
		return
	}
	nbrs := r.outRow(u, s)
	if len(nbrs) == 0 {
		return
	}
	cands := s.sims[:0]
	uTrunc := trunc.Row(u)
	for _, v := range nbrs {
		sim := simScore(r.cfg.Score.Sim, u, v, uTrunc, trunc.Row(v), int(r.deg[u]), int(r.deg[v]))
		cands = append(cands, VertexSim{V: v, Sim: sim})
	}
	s.sims = cands
	// cands is sorted by V (built from the sorted adjacency), so when no
	// sampling applies the selection is the identity.
	if r.cfg.KLocal == Unlimited || len(cands) <= r.cfg.KLocal {
		copy(dst, cands)
		return
	}
	// Rank candidates under the policy with the scratch collector; the
	// retained set matches selectRelays (snaple.go) exactly — the collector's
	// total order is strict, so the chosen set is independent of push order.
	s.selColl.Reset()
	switch r.cfg.Policy {
	case SelectMax:
		for _, c := range cands {
			s.selColl.Push(uint32(c.V), c.Sim)
		}
	case SelectMin:
		// Negated scores turn bottom-k into top-k (same trick as topk.Bottom).
		for _, c := range cands {
			s.selColl.Push(uint32(c.V), -c.Sim)
		}
	case SelectRnd:
		for _, c := range cands {
			s.selColl.Push(uint32(c.V), randx.Float64(r.cfg.Seed^rndSelSalt, uint64(u), uint64(c.V)))
		}
	}
	s.items = s.selColl.AppendResult(s.items[:0])
	chosen := s.chosen[:0]
	for _, it := range s.items {
		chosen = append(chosen, graph.VertexID(it.ID))
	}
	s.chosen = chosen
	slices.Sort(chosen)
	// Filter cands (V-ascending) against chosen (ascending) with one merge:
	// the output stays sorted by vertex ID.
	k, j := 0, 0
	for _, c := range cands {
		for j < len(chosen) && chosen[j] < c.V {
			j++
		}
		if j < len(chosen) && chosen[j] == c.V {
			dst[k] = c
			k++
		}
	}
}

// ---- Step 3: combine and aggregate path similarities (lines 12-20) ----

// CombineAppend runs step 3 for u: it walks the 2-hop paths u→v→z through
// u's relays, combines the edge similarities with ⊗, aggregates per
// candidate with ⊕ and appends the top-k predictions to dst, returning the
// extended slice (unchanged when u has no candidates). dst is caller-owned
// retained storage; everything transient lives in s.
func (r *StepRunner) CombineAppend(u graph.VertexID, trunc *Arena[graph.VertexID], sims *Arena[VertexSim], s *Scratch, dst []Prediction) []Prediction {
	if !r.frontier.InPred(u) {
		return dst
	}
	comb := r.cfg.Score.Comb.Fn
	cands := s.cands[:0]
	uTrunc := trunc.Row(u)
	for _, vs := range sims.Row(u) {
		for _, zs := range sims.Row(vs.V) {
			z := zs.V
			if z == u || containsVertex(uTrunc, z) {
				continue // z ∈ Γ̂(u) ∪ {u} (line 15's exclusion)
			}
			cands = append(cands, PathCand{Z: z, S: comb(vs.Sim, zs.Sim)})
		}
	}
	s.cands = cands
	if len(cands) == 0 {
		return dst
	}
	sortPathCands(cands)
	return s.appendFoldSorted(cands, r.cfg.Score.Agg, dst)
}

// TwoHopCount returns the length of v's sampled 2-hop path list for step 3a
// of the 3-hop extension: Σ_{z ∈ sims(v)} |sims(z) \ {v}|. Relay lists are
// V-sorted, so the self-exclusion is a binary search per relay.
func (r *StepRunner) TwoHopCount(v graph.VertexID, sims *Arena[VertexSim]) int {
	if !r.frontier.InTwoHop(v) {
		return 0
	}
	n := 0
	for _, zs := range sims.Row(v) {
		row := sims.Row(zs.V)
		n += len(row)
		if _, ok := lookupSim(row, v); ok {
			n--
		}
	}
	return n
}

// TwoHopFill writes v's sampled 2-hop path list {(w, sim(v,z) ⊗ sim(z,w)) :
// z ∈ sims(v), w ∈ sims(z), w ≠ v} into dst, which must have length
// TwoHopCount(v). See khop.go for the fold-direction discussion.
func (r *StepRunner) TwoHopFill(v graph.VertexID, sims *Arena[VertexSim], dst []PathCand) {
	if !r.frontier.InTwoHop(v) {
		return
	}
	comb := r.cfg.Score.Comb.Fn
	k := 0
	for _, zs := range sims.Row(v) {
		for _, ws := range sims.Row(zs.V) {
			if ws.V == v {
				continue
			}
			dst[k] = PathCand{Z: ws.V, S: comb(zs.Sim, ws.Sim)}
			k++
		}
	}
}

// Combine3Append runs step 3b of the 3-hop extension for u: it aggregates
// u's 2-hop paths together with the 3-hop paths obtained by extending each
// relay's stored 2-hop list by the edge (u,v), appending the top-k
// predictions to dst like CombineAppend.
func (r *StepRunner) Combine3Append(u graph.VertexID, trunc *Arena[graph.VertexID], sims *Arena[VertexSim], twoHop *Arena[PathCand], s *Scratch, dst []Prediction) []Prediction {
	if !r.frontier.InPred(u) {
		return dst
	}
	comb := r.cfg.Score.Comb.Fn
	cands := s.cands[:0]
	uTrunc := trunc.Row(u)
	for _, vs := range sims.Row(u) {
		for _, zs := range sims.Row(vs.V) {
			if zs.V == u || containsVertex(uTrunc, zs.V) {
				continue
			}
			cands = append(cands, PathCand{Z: zs.V, S: comb(vs.Sim, zs.Sim)})
		}
		for _, pc := range twoHop.Row(vs.V) {
			if pc.Z == u || containsVertex(uTrunc, pc.Z) {
				continue
			}
			cands = append(cands, PathCand{Z: pc.Z, S: comb(vs.Sim, pc.S)})
		}
	}
	s.cands = cands
	if len(cands) == 0 {
		return dst
	}
	sortPathCands(cands)
	return s.appendFoldSorted(cands, r.cfg.Score.Agg, dst)
}

// appendFoldSorted groups Z-sorted path candidates, folds each group with
// the aggregator and appends the top-k predictions, best first, to dst.
func (s *Scratch) appendFoldSorted(cands []PathCand, agg Aggregator, dst []Prediction) []Prediction {
	s.coll.Reset()
	vals := s.vals
	for i := 0; i < len(cands); {
		j := i
		for j < len(cands) && cands[j].Z == cands[i].Z {
			j++
		}
		vals = vals[:0]
		for _, pc := range cands[i:j] {
			vals = append(vals, pc.S)
		}
		s.coll.Push(uint32(cands[i].Z), agg.FoldPathsInPlace(vals))
		i = j
	}
	s.vals = vals
	s.items = s.coll.AppendResult(s.items[:0])
	for _, it := range s.items {
		dst = append(dst, Prediction{Vertex: graph.VertexID(it.ID), Score: it.Score})
	}
	return dst
}

// foldSortedPathCands is the allocation-per-call variant of appendFoldSorted
// used by the GAS Apply phases, which have no per-worker scratch.
func foldSortedPathCands(cands []PathCand, agg Aggregator, k int) []Prediction {
	if len(cands) == 0 {
		return nil
	}
	s := Scratch{coll: topk.New(k)}
	return s.appendFoldSorted(cands, agg, nil)
}
