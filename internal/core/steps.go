package core

import (
	"sort"

	"snaple/internal/graph"
	"snaple/internal/topk"
)

// This file factors Algorithm 2's three steps into per-vertex primitives so
// that every execution substrate shares one copy of the scoring logic:
//
//   - the serial reference loop (reference.go),
//   - the GAS step programs of the simulated cluster (snaple.go, khop.go),
//   - the parallel shared-memory backend (internal/engine).
//
// All primitives are deterministic in (graph, Config): truncation and the
// Γrnd selection draw from hashes keyed by (seed, u, v), and aggregation
// folds path values in sorted order (Aggregator.FoldPaths), so every
// substrate produces bit-identical Predictions regardless of scheduling.

// PathCand is one path's contribution to candidate Z: the combined
// path-similarity of equation (8). Lists are kept sorted by Z so grouping is
// a linear scan and merging preserves order.
type PathCand struct {
	Z graph.VertexID
	S float64
}

// sortPathCands orders candidates by Z ascending. Values for the same Z may
// appear in any relative order: FoldPaths sorts them before folding.
func sortPathCands(cands []PathCand) {
	sort.Slice(cands, func(i, j int) bool { return cands[i].Z < cands[j].Z })
}

// StepRunner exposes Algorithm 2's steps as per-vertex functions over the
// CSR graph. Construct one with NewStepRunner; methods are safe for
// concurrent use as long as each goroutine uses its own Scratch and writes
// to disjoint vertices.
type StepRunner struct {
	g   *graph.Digraph
	cfg Config
	deg []int32 // full out-degrees, static topology metadata
}

// NewStepRunner validates cfg, fills defaults and precomputes the degree
// table shared by all steps.
func NewStepRunner(g *graph.Digraph, cfg Config) (*StepRunner, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st := newSnapleState(g, cfg)
	return &StepRunner{g: g, cfg: cfg, deg: st.deg}, nil
}

// Config returns the runner's configuration with defaults applied.
func (r *StepRunner) Config() Config { return r.cfg }

// Scratch holds the per-worker reusable buffers of the step functions. Each
// concurrent worker needs its own; construct with StepRunner.NewScratch.
type Scratch struct {
	nbrs  []graph.VertexID
	sims  []VertexSim
	cands []PathCand
	vals  []float64
	coll  *topk.Collector
}

// NewScratch returns a Scratch sized for the runner's configuration.
func (r *StepRunner) NewScratch() *Scratch {
	return &Scratch{coll: topk.New(r.cfg.K)}
}

// Truncate runs step 1 (Algorithm 2, lines 1-6) for u: the hash-keyed
// truncation Γ̂(u) of its out-neighbourhood. The result is a fresh
// exact-sized slice (nil when empty), sorted ascending because it is a
// subsequence of the sorted adjacency.
func (r *StepRunner) Truncate(u graph.VertexID, s *Scratch) []graph.VertexID {
	kept := s.nbrs[:0]
	for _, v := range r.g.OutNeighbors(u) {
		if keepTruncated(r.cfg.Seed, u, v, int(r.deg[u]), r.cfg.ThrGamma) {
			kept = append(kept, v)
		}
	}
	s.nbrs = kept
	if len(kept) == 0 {
		return nil
	}
	return append(make([]graph.VertexID, 0, len(kept)), kept...)
}

// Relays runs step 2 (lines 7-11) for u: raw similarities to every
// out-neighbour over the truncated neighbourhoods, then the k_local
// selection policy. trunc must hold the step-1 output for u and all its
// out-neighbours. The result is a fresh slice sorted by vertex ID.
func (r *StepRunner) Relays(u graph.VertexID, trunc [][]graph.VertexID, s *Scratch) []VertexSim {
	nbrs := r.g.OutNeighbors(u)
	if len(nbrs) == 0 {
		return nil
	}
	cands := s.sims[:0]
	for _, v := range nbrs {
		sim := simScore(r.cfg.Score.Sim, u, v, trunc[u], trunc[v], int(r.deg[u]), int(r.deg[v]))
		cands = append(cands, VertexSim{V: v, Sim: sim})
	}
	s.sims = cands
	return selectRelays(r.cfg, u, cands)
}

// Combine runs step 3 (lines 12-20) for u: it walks the 2-hop paths u→v→z
// through u's relays, combines the edge similarities with ⊗, aggregates per
// candidate with ⊕ and returns the top-k predictions (nil when none).
func (r *StepRunner) Combine(u graph.VertexID, trunc [][]graph.VertexID, sims [][]VertexSim, s *Scratch) []Prediction {
	comb := r.cfg.Score.Comb.Fn
	cands := s.cands[:0]
	for _, vs := range sims[u] {
		for _, zs := range sims[vs.V] {
			z := zs.V
			if z == u || containsVertex(trunc[u], z) {
				continue // z ∈ Γ̂(u) ∪ {u} (line 15's exclusion)
			}
			cands = append(cands, PathCand{Z: z, S: comb(vs.Sim, zs.Sim)})
		}
	}
	s.cands = cands
	if len(cands) == 0 {
		return nil
	}
	sortPathCands(cands)
	return s.foldSorted(cands, r.cfg.Score.Agg)
}

// TwoHopPaths runs step 3a of the 3-hop extension for v: its sampled 2-hop
// path list {(w, sim(v,z) ⊗ sim(z,w)) : z ∈ sims(v), w ∈ sims(z), w ≠ v}.
// See khop.go for the fold-direction discussion.
func (r *StepRunner) TwoHopPaths(v graph.VertexID, sims [][]VertexSim) []PathCand {
	comb := r.cfg.Score.Comb.Fn
	var out []PathCand
	for _, zs := range sims[v] {
		for _, ws := range sims[zs.V] {
			if ws.V == v {
				continue
			}
			out = append(out, PathCand{Z: ws.V, S: comb(zs.Sim, ws.Sim)})
		}
	}
	return out
}

// Combine3 runs step 3b of the 3-hop extension for u: it aggregates u's
// 2-hop paths together with the 3-hop paths obtained by extending each
// relay's stored 2-hop list by the edge (u,v).
func (r *StepRunner) Combine3(u graph.VertexID, trunc [][]graph.VertexID, sims [][]VertexSim, twoHop [][]PathCand, s *Scratch) []Prediction {
	comb := r.cfg.Score.Comb.Fn
	cands := s.cands[:0]
	for _, vs := range sims[u] {
		for _, zs := range sims[vs.V] {
			if zs.V == u || containsVertex(trunc[u], zs.V) {
				continue
			}
			cands = append(cands, PathCand{Z: zs.V, S: comb(vs.Sim, zs.Sim)})
		}
		for _, pc := range twoHop[vs.V] {
			if pc.Z == u || containsVertex(trunc[u], pc.Z) {
				continue
			}
			cands = append(cands, PathCand{Z: pc.Z, S: comb(vs.Sim, pc.S)})
		}
	}
	s.cands = cands
	if len(cands) == 0 {
		return nil
	}
	sortPathCands(cands)
	return s.foldSorted(cands, r.cfg.Score.Agg)
}

// foldSorted groups Z-sorted path candidates, folds each group with the
// aggregator and returns the top-k predictions, best first (nil when empty).
func (s *Scratch) foldSorted(cands []PathCand, agg Aggregator) []Prediction {
	s.coll.Reset()
	vals := s.vals
	for i := 0; i < len(cands); {
		j := i
		for j < len(cands) && cands[j].Z == cands[i].Z {
			j++
		}
		vals = vals[:0]
		for _, pc := range cands[i:j] {
			vals = append(vals, pc.S)
		}
		s.coll.Push(uint32(cands[i].Z), agg.FoldPaths(vals))
		i = j
	}
	s.vals = vals
	items := s.coll.Result()
	if len(items) == 0 {
		return nil
	}
	out := make([]Prediction, len(items))
	for i, it := range items {
		out[i] = Prediction{Vertex: graph.VertexID(it.ID), Score: it.Score}
	}
	return out
}

// foldSortedPathCands is the allocation-per-call variant of foldSorted used
// by the GAS Apply phases, which have no per-worker scratch.
func foldSortedPathCands(cands []PathCand, agg Aggregator, k int) []Prediction {
	if len(cands) == 0 {
		return nil
	}
	s := Scratch{coll: topk.New(k)}
	return s.foldSorted(cands, agg)
}
