package core

import (
	"cmp"
	"fmt"
	"slices"

	"snaple/internal/graph"
)

// This file exposes Algorithm 2's GAS step programs (snaple.go, khop.go) in
// a monomorphic, wire-friendly form, so that a remote worker process holding
// only one partition of a vertex-cut can execute the gather and sum+apply
// phases of every superstep. The simulated cluster runs the same programs
// through the generic gas engine; a dist worker runs them through
// DistPartition, with the mirror/master exchange carried over TCP by
// internal/wire instead of the in-memory gref tables of gas.Distribute.
//
// Determinism across substrates holds for the same reason it does between
// the serial, local and sim backends: every random draw is hash-keyed by
// (seed, vertex IDs) and every fold canonicalises its input before reducing
// (step 1 and 2 applies sort, Aggregator.FoldPaths sorts path values), so
// partials may arrive from the network in any order without changing a bit
// of the output.

// DistStep identifies one superstep of Algorithm 2's distributed pipeline.
type DistStep int

const (
	// DistTruncate is step 1: sample the truncated neighbourhoods Γ̂.
	DistTruncate DistStep = iota + 1
	// DistRelays is step 2: raw similarities plus the k_local relay selection.
	DistRelays
	// DistCombine is step 3: combine and aggregate 2-hop paths (the final
	// superstep of the paper's 2-hop configuration).
	DistCombine
	// DistTwoHop is step 3a of the 3-hop extension: materialise per-vertex
	// 2-hop path lists.
	DistTwoHop
	// DistCombine3 is step 3b of the 3-hop extension: aggregate 2- and 3-hop
	// paths into final predictions.
	DistCombine3
)

// String implements fmt.Stringer.
func (s DistStep) String() string {
	switch s {
	case DistTruncate:
		return "truncate"
	case DistRelays:
		return "relays"
	case DistCombine:
		return "combine"
	case DistTwoHop:
		return "twohop"
	case DistCombine3:
		return "combine3"
	default:
		return fmt.Sprintf("DistStep(%d)", int(s))
	}
}

// DistSteps returns the superstep pipeline for the given maximum path
// length: steps 1, 2, 3 for the paper's 2-hop setting, steps 1, 2, 3a, 3b
// for the footnote-2 extension.
func DistSteps(paths int) []DistStep {
	if paths == 3 {
		return []DistStep{DistTruncate, DistRelays, DistTwoHop, DistCombine3}
	}
	return []DistStep{DistTruncate, DistRelays, DistCombine}
}

// DistPartial is one partition's gather partial sum for one vertex in one
// superstep. Exactly one payload slice is non-nil, matching the superstep's
// gather type; a vertex with no contribution produces no DistPartial at all.
// The type is gob-encodable: it is what dist workers ship to the vertex's
// master when the gathering partition does not hold the master copy.
type DistPartial struct {
	V     graph.VertexID
	Nbrs  []graph.VertexID // DistTruncate
	Sims  []VertexSim      // DistRelays
	Cands []PathCand       // DistCombine, DistTwoHop, DistCombine3
}

// DistPartition executes Algorithm 2's supersteps over one partition of a
// vertex-cut: the edges assigned to one worker plus a local replica of every
// endpoint's state. It is the compute half of a dist worker; routing partials
// to masters and refreshed state to mirrors is the caller's job
// (internal/wire carries both for cmd/snaple-worker).
type DistPartition struct {
	st      *snapleState
	locals  []graph.VertexID         // sorted global IDs of local vertices
	index   map[graph.VertexID]int32 // global -> local
	edgeSrc []int32                  // local source index per local edge
	edgeDst []int32                  // local target index per local edge
	data    []VData                  // replica state, one per local vertex
	// scope holds each local vertex's frontier scope mask on a
	// query-scoped run (Scope* bits, frontier.go), nil on a full run. The
	// coordinator computes the global closure and ships only these local
	// bits; Gather consults the source's bit for the running step.
	scope []uint8

	// srcContig caches whether edgeSrc is grouped into one contiguous run
	// per source (0 unknown, 1 yes, 2 no) — the precondition for the
	// streaming gather. srcSorted additionally records whether those runs
	// ascend by source index, the precondition for GatherVertex's binary
	// search; both are filled by the same scan.
	srcContig uint8
	srcSorted uint8
	// GatherStream's per-source scratch, reused across runs and supersteps.
	gatherIDs   []graph.VertexID
	gatherSims  []VertexSim
	gatherCands []PathCand
}

// NewDistPartition assembles a partition from its shipped description:
// the sorted local vertex table, the full out-degree of each local vertex
// (degrees are global topology metadata the truncation draw needs), and the
// partition's edges as indices into locals. numVertices is the global vertex
// count. An empty partition (no locals, no edges) is valid.
func NewDistPartition(cfg Config, numVertices int, locals []graph.VertexID, deg []int32, edgeSrc, edgeDst []int32) (*DistPartition, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	if len(deg) != len(locals) {
		return nil, fmt.Errorf("core: dist partition: %d degrees for %d local vertices", len(deg), len(locals))
	}
	if len(edgeSrc) != len(edgeDst) {
		return nil, fmt.Errorf("core: dist partition: %d edge sources, %d edge targets", len(edgeSrc), len(edgeDst))
	}
	// The step programs index degrees by global vertex ID, so scatter the
	// local degree column into a global-length table (4 B per vertex — the
	// same static metadata every other substrate precomputes).
	fullDeg := make([]int32, numVertices)
	index := make(map[graph.VertexID]int32, len(locals))
	for i, v := range locals {
		if int(v) >= numVertices {
			return nil, fmt.Errorf("core: dist partition: local vertex %d outside [0,%d)", v, numVertices)
		}
		if i > 0 && locals[i-1] >= v {
			return nil, fmt.Errorf("core: dist partition: local vertex table not strictly ascending at %d", i)
		}
		fullDeg[v] = deg[i]
		index[v] = int32(i)
	}
	for i := range edgeSrc {
		if edgeSrc[i] < 0 || int(edgeSrc[i]) >= len(locals) ||
			edgeDst[i] < 0 || int(edgeDst[i]) >= len(locals) {
			return nil, fmt.Errorf("core: dist partition: edge %d references vertex outside the local table", i)
		}
	}
	return &DistPartition{
		st:      &snapleState{cfg: cfg, deg: fullDeg},
		locals:  locals,
		index:   index,
		edgeSrc: edgeSrc,
		edgeDst: edgeDst,
		data:    make([]VData, len(locals)),
	}, nil
}

// Config returns the partition's configuration with defaults applied.
func (p *DistPartition) Config() Config { return p.st.cfg }

// SetScope installs the per-local frontier scope masks of a query-scoped
// run (one Scope* bitmask per local vertex, aligned with Locals). A nil
// scope restores the full-run behaviour.
func (p *DistPartition) SetScope(scope []uint8) error {
	if scope != nil && len(scope) != len(p.locals) {
		return fmt.Errorf("core: dist partition: %d scope masks for %d local vertices", len(scope), len(p.locals))
	}
	p.scope = scope
	return nil
}

// inScope reports whether local vertex li gathers during step.
func (p *DistPartition) inScope(step DistStep, li int32) bool {
	return p.scope == nil || p.scope[li]&step.ScopeBit() != 0
}

// Locals returns the sorted global IDs of the partition's local vertices.
// The slice is owned by the partition and must not be modified.
func (p *DistPartition) Locals() []graph.VertexID { return p.locals }

// NumEdges returns the number of edges placed on this partition.
func (p *DistPartition) NumEdges() int { return len(p.edgeSrc) }

// LocalIndex returns the local index of v, if v is a local vertex.
func (p *DistPartition) LocalIndex(v graph.VertexID) (int, bool) {
	li, ok := p.index[v]
	return int(li), ok
}

// gatherEdges folds gather over the partition's edges, accumulating one
// partial sum per local source vertex (all of Algorithm 2's programs gather
// over out-edges). On a scoped run, edges whose source is outside step's
// frontier set contribute nothing — the worker-side twin of the frontier
// gating the sim backend's step programs apply themselves.
func gatherEdges[G any](p *DistPartition, step DistStep, gather func(si, di int32) (G, bool), sum func(a, b G) G) ([]G, []bool) {
	partial := make([]G, len(p.locals))
	has := make([]bool, len(p.locals))
	for i := range p.edgeSrc {
		si, di := p.edgeSrc[i], p.edgeDst[i]
		if !p.inScope(step, si) {
			continue
		}
		gval, ok := gather(si, di)
		if !ok {
			continue
		}
		if !has[si] {
			partial[si], has[si] = gval, true
		} else {
			partial[si] = sum(partial[si], gval)
		}
	}
	return partial, has
}

// packPartials converts aligned (partial, has) columns into the sparse wire
// form, ascending by local index (hence by vertex ID).
func packPartials[G any](p *DistPartition, partial []G, has []bool, set func(*DistPartial, G)) []DistPartial {
	n := 0
	for _, h := range has {
		if h {
			n++
		}
	}
	out := make([]DistPartial, 0, n)
	for li, h := range has {
		if !h {
			continue
		}
		dp := DistPartial{V: p.locals[li]}
		set(&dp, partial[li])
		out = append(out, dp)
	}
	return out
}

// Gather runs step's gather phase over the partition's edges and returns one
// partial per contributing local vertex, ascending by vertex ID. The caller
// routes each partial to the vertex's master (which may be this partition).
func (p *DistPartition) Gather(step DistStep) ([]DistPartial, error) {
	switch step {
	case DistTruncate:
		prog := step1{p.st}
		partial, has := gatherEdges(p, step, func(si, di int32) ([]graph.VertexID, bool) {
			return prog.Gather(p.locals[si], p.locals[di], &p.data[si], &p.data[di], nil)
		}, prog.Sum)
		return packPartials(p, partial, has, func(dp *DistPartial, g []graph.VertexID) { dp.Nbrs = g }), nil
	case DistRelays:
		prog := step2{p.st}
		partial, has := gatherEdges(p, step, func(si, di int32) ([]VertexSim, bool) {
			return prog.Gather(p.locals[si], p.locals[di], &p.data[si], &p.data[di], nil)
		}, prog.Sum)
		return packPartials(p, partial, has, func(dp *DistPartial, g []VertexSim) { dp.Sims = g }), nil
	case DistCombine:
		prog := step3{p.st}
		partial, has := gatherEdges(p, step, func(si, di int32) ([]PathCand, bool) {
			return prog.Gather(p.locals[si], p.locals[di], &p.data[si], &p.data[di], nil)
		}, prog.Sum)
		return packPartials(p, partial, has, func(dp *DistPartial, g []PathCand) { dp.Cands = g }), nil
	case DistTwoHop:
		prog := step3a{p.st}
		partial, has := gatherEdges(p, step, func(si, di int32) ([]PathCand, bool) {
			return prog.Gather(p.locals[si], p.locals[di], &p.data[si], &p.data[di], nil)
		}, prog.Sum)
		return packPartials(p, partial, has, func(dp *DistPartial, g []PathCand) { dp.Cands = g }), nil
	case DistCombine3:
		prog := step3b{p.st}
		partial, has := gatherEdges(p, step, func(si, di int32) ([]PathCand, bool) {
			return prog.Gather(p.locals[si], p.locals[di], &p.data[si], &p.data[di], nil)
		}, prog.Sum)
		return packPartials(p, partial, has, func(dp *DistPartial, g []PathCand) { dp.Cands = g }), nil
	default:
		return nil, fmt.Errorf("core: unknown dist step %d", int(step))
	}
}

// srcContiguous reports whether the partition's edges are grouped into one
// contiguous run per source vertex — true for every partition cut from a CSR
// graph in edge order (engine.Dist's deploy), and the precondition for the
// run-at-a-time streaming gather. The same pass records whether the runs are
// ascending by source (srcSorted), the extra precondition GatherVertex needs
// to find a run by binary search. The check is linear and cached.
func (p *DistPartition) srcContiguous() bool {
	if p.srcContig != 0 {
		return p.srcContig == 1
	}
	seen := make([]bool, len(p.locals))
	p.srcContig = 1
	p.srcSorted = 1
	prev := int32(-1)
	for i := 0; i < len(p.edgeSrc); {
		si := p.edgeSrc[i]
		if seen[si] {
			p.srcContig = 2
			p.srcSorted = 2
			break
		}
		if si < prev {
			p.srcSorted = 2
		}
		seen[si] = true
		prev = si
		j := i + 1
		for j < len(p.edgeSrc) && p.edgeSrc[j] == si {
			j++
		}
		i = j
	}
	return p.srcContig == 1
}

// CanGatherVertex reports whether GatherVertex is available: the partition's
// edges must be grouped per source with runs ascending by local index, which
// holds for every partition engine.Dist deploys from a CSR cut.
func (p *DistPartition) CanGatherVertex() bool {
	return p.srcContiguous() && p.srcSorted == 1
}

// GatherStream runs step's gather phase one source vertex at a time, handing
// emit each contributing source's partial as soon as its edge run completes —
// the producer side of the pipelined superstep, which streams partials onto
// the wire while later sources are still gathering. The DistPartial (and its
// slices) is scratch owned by the partition, valid only during the emit call;
// emit must encode or copy, not retain. Partials arrive ascending by local
// index, one per contributing source, exactly like Gather's. An emit error
// aborts the stream and is returned.
//
// When the partition's edges are not source-contiguous the stream degrades
// to the buffered Gather and emits its result in order.
func (p *DistPartition) GatherStream(step DistStep, emit func(li int32, dp *DistPartial) error) error {
	if !p.srcContiguous() {
		parts, err := p.Gather(step)
		if err != nil {
			return err
		}
		for i := range parts {
			li := p.index[parts[i].V]
			if err := emit(li, &parts[i]); err != nil {
				return err
			}
		}
		return nil
	}
	switch step {
	case DistTruncate, DistRelays, DistCombine, DistTwoHop, DistCombine3:
	default:
		return fmt.Errorf("core: unknown dist step %d", int(step))
	}
	var dp DistPartial
	for i := 0; i < len(p.edgeSrc); {
		si := p.edgeSrc[i]
		j := i + 1
		for j < len(p.edgeSrc) && p.edgeSrc[j] == si {
			j++
		}
		if p.gatherRun(step, si, i, j, &dp) {
			if err := emit(si, &dp); err != nil {
				return err
			}
		}
		i = j
	}
	return nil
}

// gatherRun gathers one source's edge run [i,j) into dp, reporting whether
// the source contributed. dp's slices alias the partition's gather scratch,
// valid until the next gatherRun call.
//
// The run bodies inline the step programs of snaple.go / khop.go with two
// divergences that cannot change a bit of the output: the frontier checks
// are dropped (a dist worker's frontier is always nil — scoping is the
// shipped scope masks, consulted below), and candidate lists are built in
// edge order without the buffered path's sorted merge — Apply canonicalises
// (sortPathCands + value-sorting folds) before any order could matter.
func (p *DistPartition) gatherRun(step DistStep, si int32, i, j int, dp *DistPartial) bool {
	if !p.inScope(step, si) {
		return false
	}
	cfg := &p.st.cfg
	deg := p.st.deg
	src := p.locals[si]
	srcD := &p.data[si]
	switch step {
	case DistTruncate:
		ids := p.gatherIDs[:0]
		sd := int(deg[src])
		for e := i; e < j; e++ {
			dst := p.locals[p.edgeDst[e]]
			if keepTruncated(cfg.Seed, src, dst, sd, cfg.ThrGamma) {
				ids = append(ids, dst)
			}
		}
		p.gatherIDs = ids
		if len(ids) > 0 {
			*dp = DistPartial{V: src, Nbrs: ids}
			return true
		}
	case DistRelays:
		sims := p.gatherSims[:0]
		for e := i; e < j; e++ {
			di := p.edgeDst[e]
			dst := p.locals[di]
			dstD := &p.data[di]
			sims = append(sims, VertexSim{
				V:   dst,
				Sim: simScore(cfg.Score.Sim, src, dst, srcD.Nbrs, dstD.Nbrs, int(deg[src]), int(deg[dst])),
			})
		}
		p.gatherSims = sims
		// Every edge contributes a similarity, and j > i.
		*dp = DistPartial{V: src, Sims: sims}
		return true
	case DistCombine:
		comb := cfg.Score.Comb.Fn
		cands := p.gatherCands[:0]
		for e := i; e < j; e++ {
			di := p.edgeDst[e]
			dstD := &p.data[di]
			suv, ok := lookupSim(srcD.Sims, p.locals[di])
			if !ok || len(dstD.Sims) == 0 {
				continue
			}
			for _, zs := range dstD.Sims {
				if zs.V == src || containsVertex(srcD.Nbrs, zs.V) {
					continue
				}
				cands = append(cands, PathCand{Z: zs.V, S: comb(suv, zs.Sim)})
			}
		}
		p.gatherCands = cands
		if len(cands) > 0 {
			*dp = DistPartial{V: src, Cands: cands}
			return true
		}
	case DistTwoHop:
		comb := cfg.Score.Comb.Fn
		cands := p.gatherCands[:0]
		for e := i; e < j; e++ {
			di := p.edgeDst[e]
			dstD := &p.data[di]
			svz, ok := lookupSim(srcD.Sims, p.locals[di])
			if !ok || len(dstD.Sims) == 0 {
				continue
			}
			for _, ws := range dstD.Sims {
				if ws.V == src {
					continue
				}
				cands = append(cands, PathCand{Z: ws.V, S: comb(svz, ws.Sim)})
			}
		}
		p.gatherCands = cands
		if len(cands) > 0 {
			*dp = DistPartial{V: src, Cands: cands}
			return true
		}
	case DistCombine3:
		comb := cfg.Score.Comb.Fn
		cands := p.gatherCands[:0]
		for e := i; e < j; e++ {
			di := p.edgeDst[e]
			dstD := &p.data[di]
			suv, ok := lookupSim(srcD.Sims, p.locals[di])
			if !ok {
				continue
			}
			for _, zs := range dstD.Sims {
				if zs.V == src || containsVertex(srcD.Nbrs, zs.V) {
					continue
				}
				cands = append(cands, PathCand{Z: zs.V, S: comb(suv, zs.Sim)})
			}
			for _, pc := range dstD.TwoHop {
				if pc.Z == src || containsVertex(srcD.Nbrs, pc.Z) {
					continue
				}
				cands = append(cands, PathCand{Z: pc.Z, S: comb(suv, pc.S)})
			}
		}
		p.gatherCands = cands
		if len(cands) > 0 {
			*dp = DistPartial{V: src, Cands: cands}
			return true
		}
	}
	return false
}

// GatherVertex re-runs step's gather for the single local vertex li, filling
// dp exactly as GatherStream's emit for that vertex would and reporting
// whether it contributed. dp's slices alias the partition's gather scratch,
// valid until the next gather call.
//
// This is the apply-time twin of the streaming gather: a master that also
// gathers locally can recompute its own partial on demand instead of keeping
// an encoded copy across the superstep's exchange. Re-gathering after other
// vertices have applied is exact: apply writes only the step's output field,
// which the same step's gather never reads — the same property that lets
// GatherStream's inline applies run mid-stream.
//
// Requires CanGatherVertex (source-grouped, ascending edge runs).
func (p *DistPartition) GatherVertex(step DistStep, li int32, dp *DistPartial) (bool, error) {
	switch step {
	case DistTruncate, DistRelays, DistCombine, DistTwoHop, DistCombine3:
	default:
		return false, fmt.Errorf("core: unknown dist step %d", int(step))
	}
	if !p.CanGatherVertex() {
		return false, fmt.Errorf("core: GatherVertex on a partition without sorted source runs")
	}
	if li < 0 || int(li) >= len(p.locals) {
		return false, fmt.Errorf("core: GatherVertex: local index %d outside [0,%d)", li, len(p.locals))
	}
	i, found := slices.BinarySearch(p.edgeSrc, li)
	if !found {
		return false, nil // no out-edges here, so no contribution
	}
	j := i + 1
	for j < len(p.edgeSrc) && p.edgeSrc[j] == li {
		j++
	}
	return p.gatherRun(step, li, i, j, dp), nil
}

// Apply runs step's sum+apply phase for one vertex mastered on this
// partition: it folds parts — the local partial plus any partials received
// from other partitions, in any order — and updates v's local replica, which
// becomes the authoritative copy to broadcast. parts may be empty (no edge
// anywhere contributed); apply still runs, clearing the step's output field
// exactly as the gas engine does for an empty gather.
func (p *DistPartition) Apply(step DistStep, v graph.VertexID, parts []DistPartial) error {
	li, ok := p.index[v]
	if !ok {
		return fmt.Errorf("core: apply for %v: vertex %d is not local", step, v)
	}
	d := &p.data[li]
	// A single partial (the streaming session's pre-merged case) skips the
	// concatenation alloc and feeds its slices to apply directly; the cand
	// steps still canonicalise, which may reorder the caller's slice in
	// place — harmless, callers hand over scratch or routing copies.
	one := len(parts) == 1
	switch step {
	case DistTruncate:
		var sum []graph.VertexID
		if one {
			sum = parts[0].Nbrs
		} else {
			for _, dp := range parts {
				sum = append(sum, dp.Nbrs...)
			}
		}
		step1{p.st}.Apply(v, d, sum, len(sum) > 0)
	case DistRelays:
		var sum []VertexSim
		if one {
			sum = parts[0].Sims
		} else {
			for _, dp := range parts {
				sum = append(sum, dp.Sims...)
			}
		}
		step2{p.st}.Apply(v, d, sum, len(sum) > 0)
	case DistCombine, DistTwoHop, DistCombine3:
		var sum []PathCand
		if one {
			sum = parts[0].Cands
		} else {
			for _, dp := range parts {
				sum = append(sum, dp.Cands...)
			}
		}
		// The gas engine merges partials Z-sorted; concatenation needs one
		// sort to restore the grouping Apply expects. Equal-Z value order is
		// irrelevant: FoldPaths sorts each group's values before folding.
		sortPathCands(sum)
		switch step {
		case DistCombine:
			step3{p.st}.Apply(v, d, sum, len(sum) > 0)
		case DistTwoHop:
			step3a{p.st}.Apply(v, d, sum, len(sum) > 0)
		default:
			step3b{p.st}.Apply(v, d, sum, len(sum) > 0)
		}
	default:
		return fmt.Errorf("core: unknown dist step %d", int(step))
	}
	return nil
}

// State returns a copy of v's local replica, for master→mirror broadcast and
// result collection.
func (p *DistPartition) State(v graph.VertexID) (VData, bool) {
	li, ok := p.index[v]
	if !ok {
		return VData{}, false
	}
	return p.data[li], true
}

// SetState overwrites v's local replica with the master's refreshed state
// (the broadcast half of a superstep, received over the wire).
func (p *DistPartition) SetState(v graph.VertexID, d VData) error {
	li, ok := p.index[v]
	if !ok {
		return fmt.Errorf("core: refresh for vertex %d, which is not local", v)
	}
	p.data[li] = d
	return nil
}

// MutableState returns a pointer to v's local replica so a refresh can be
// decoded in place, reusing the slice capacity the previous refresh left
// behind. The pointer is valid until the partition is rebuilt.
func (p *DistPartition) MutableState(v graph.VertexID) (*VData, bool) {
	li, ok := p.index[v]
	if !ok {
		return nil, false
	}
	return &p.data[li], true
}

// SortDistPartials orders partials by vertex ID (the canonical wire order;
// routing may interleave sources). Ties are impossible within one message.
func SortDistPartials(parts []DistPartial) {
	slices.SortFunc(parts, func(a, b DistPartial) int { return cmp.Compare(a.V, b.V) })
}
