package core

import (
	"fmt"
	"sort"

	"snaple/internal/graph"
)

// This file exposes Algorithm 2's GAS step programs (snaple.go, khop.go) in
// a monomorphic, wire-friendly form, so that a remote worker process holding
// only one partition of a vertex-cut can execute the gather and sum+apply
// phases of every superstep. The simulated cluster runs the same programs
// through the generic gas engine; a dist worker runs them through
// DistPartition, with the mirror/master exchange carried over TCP by
// internal/wire instead of the in-memory gref tables of gas.Distribute.
//
// Determinism across substrates holds for the same reason it does between
// the serial, local and sim backends: every random draw is hash-keyed by
// (seed, vertex IDs) and every fold canonicalises its input before reducing
// (step 1 and 2 applies sort, Aggregator.FoldPaths sorts path values), so
// partials may arrive from the network in any order without changing a bit
// of the output.

// DistStep identifies one superstep of Algorithm 2's distributed pipeline.
type DistStep int

const (
	// DistTruncate is step 1: sample the truncated neighbourhoods Γ̂.
	DistTruncate DistStep = iota + 1
	// DistRelays is step 2: raw similarities plus the k_local relay selection.
	DistRelays
	// DistCombine is step 3: combine and aggregate 2-hop paths (the final
	// superstep of the paper's 2-hop configuration).
	DistCombine
	// DistTwoHop is step 3a of the 3-hop extension: materialise per-vertex
	// 2-hop path lists.
	DistTwoHop
	// DistCombine3 is step 3b of the 3-hop extension: aggregate 2- and 3-hop
	// paths into final predictions.
	DistCombine3
)

// String implements fmt.Stringer.
func (s DistStep) String() string {
	switch s {
	case DistTruncate:
		return "truncate"
	case DistRelays:
		return "relays"
	case DistCombine:
		return "combine"
	case DistTwoHop:
		return "twohop"
	case DistCombine3:
		return "combine3"
	default:
		return fmt.Sprintf("DistStep(%d)", int(s))
	}
}

// DistSteps returns the superstep pipeline for the given maximum path
// length: steps 1, 2, 3 for the paper's 2-hop setting, steps 1, 2, 3a, 3b
// for the footnote-2 extension.
func DistSteps(paths int) []DistStep {
	if paths == 3 {
		return []DistStep{DistTruncate, DistRelays, DistTwoHop, DistCombine3}
	}
	return []DistStep{DistTruncate, DistRelays, DistCombine}
}

// DistPartial is one partition's gather partial sum for one vertex in one
// superstep. Exactly one payload slice is non-nil, matching the superstep's
// gather type; a vertex with no contribution produces no DistPartial at all.
// The type is gob-encodable: it is what dist workers ship to the vertex's
// master when the gathering partition does not hold the master copy.
type DistPartial struct {
	V     graph.VertexID
	Nbrs  []graph.VertexID // DistTruncate
	Sims  []VertexSim      // DistRelays
	Cands []PathCand       // DistCombine, DistTwoHop, DistCombine3
}

// DistPartition executes Algorithm 2's supersteps over one partition of a
// vertex-cut: the edges assigned to one worker plus a local replica of every
// endpoint's state. It is the compute half of a dist worker; routing partials
// to masters and refreshed state to mirrors is the caller's job
// (internal/wire carries both for cmd/snaple-worker).
type DistPartition struct {
	st      *snapleState
	locals  []graph.VertexID         // sorted global IDs of local vertices
	index   map[graph.VertexID]int32 // global -> local
	edgeSrc []int32                  // local source index per local edge
	edgeDst []int32                  // local target index per local edge
	data    []VData                  // replica state, one per local vertex
	// scope holds each local vertex's frontier scope mask on a
	// query-scoped run (Scope* bits, frontier.go), nil on a full run. The
	// coordinator computes the global closure and ships only these local
	// bits; Gather consults the source's bit for the running step.
	scope []uint8
}

// NewDistPartition assembles a partition from its shipped description:
// the sorted local vertex table, the full out-degree of each local vertex
// (degrees are global topology metadata the truncation draw needs), and the
// partition's edges as indices into locals. numVertices is the global vertex
// count. An empty partition (no locals, no edges) is valid.
func NewDistPartition(cfg Config, numVertices int, locals []graph.VertexID, deg []int32, edgeSrc, edgeDst []int32) (*DistPartition, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	if len(deg) != len(locals) {
		return nil, fmt.Errorf("core: dist partition: %d degrees for %d local vertices", len(deg), len(locals))
	}
	if len(edgeSrc) != len(edgeDst) {
		return nil, fmt.Errorf("core: dist partition: %d edge sources, %d edge targets", len(edgeSrc), len(edgeDst))
	}
	// The step programs index degrees by global vertex ID, so scatter the
	// local degree column into a global-length table (4 B per vertex — the
	// same static metadata every other substrate precomputes).
	fullDeg := make([]int32, numVertices)
	index := make(map[graph.VertexID]int32, len(locals))
	for i, v := range locals {
		if int(v) >= numVertices {
			return nil, fmt.Errorf("core: dist partition: local vertex %d outside [0,%d)", v, numVertices)
		}
		if i > 0 && locals[i-1] >= v {
			return nil, fmt.Errorf("core: dist partition: local vertex table not strictly ascending at %d", i)
		}
		fullDeg[v] = deg[i]
		index[v] = int32(i)
	}
	for i := range edgeSrc {
		if edgeSrc[i] < 0 || int(edgeSrc[i]) >= len(locals) ||
			edgeDst[i] < 0 || int(edgeDst[i]) >= len(locals) {
			return nil, fmt.Errorf("core: dist partition: edge %d references vertex outside the local table", i)
		}
	}
	return &DistPartition{
		st:      &snapleState{cfg: cfg, deg: fullDeg},
		locals:  locals,
		index:   index,
		edgeSrc: edgeSrc,
		edgeDst: edgeDst,
		data:    make([]VData, len(locals)),
	}, nil
}

// Config returns the partition's configuration with defaults applied.
func (p *DistPartition) Config() Config { return p.st.cfg }

// SetScope installs the per-local frontier scope masks of a query-scoped
// run (one Scope* bitmask per local vertex, aligned with Locals). A nil
// scope restores the full-run behaviour.
func (p *DistPartition) SetScope(scope []uint8) error {
	if scope != nil && len(scope) != len(p.locals) {
		return fmt.Errorf("core: dist partition: %d scope masks for %d local vertices", len(scope), len(p.locals))
	}
	p.scope = scope
	return nil
}

// inScope reports whether local vertex li gathers during step.
func (p *DistPartition) inScope(step DistStep, li int32) bool {
	return p.scope == nil || p.scope[li]&step.ScopeBit() != 0
}

// Locals returns the sorted global IDs of the partition's local vertices.
// The slice is owned by the partition and must not be modified.
func (p *DistPartition) Locals() []graph.VertexID { return p.locals }

// NumEdges returns the number of edges placed on this partition.
func (p *DistPartition) NumEdges() int { return len(p.edgeSrc) }

// LocalIndex returns the local index of v, if v is a local vertex.
func (p *DistPartition) LocalIndex(v graph.VertexID) (int, bool) {
	li, ok := p.index[v]
	return int(li), ok
}

// gatherEdges folds gather over the partition's edges, accumulating one
// partial sum per local source vertex (all of Algorithm 2's programs gather
// over out-edges). On a scoped run, edges whose source is outside step's
// frontier set contribute nothing — the worker-side twin of the frontier
// gating the sim backend's step programs apply themselves.
func gatherEdges[G any](p *DistPartition, step DistStep, gather func(si, di int32) (G, bool), sum func(a, b G) G) ([]G, []bool) {
	partial := make([]G, len(p.locals))
	has := make([]bool, len(p.locals))
	for i := range p.edgeSrc {
		si, di := p.edgeSrc[i], p.edgeDst[i]
		if !p.inScope(step, si) {
			continue
		}
		gval, ok := gather(si, di)
		if !ok {
			continue
		}
		if !has[si] {
			partial[si], has[si] = gval, true
		} else {
			partial[si] = sum(partial[si], gval)
		}
	}
	return partial, has
}

// packPartials converts aligned (partial, has) columns into the sparse wire
// form, ascending by local index (hence by vertex ID).
func packPartials[G any](p *DistPartition, partial []G, has []bool, set func(*DistPartial, G)) []DistPartial {
	n := 0
	for _, h := range has {
		if h {
			n++
		}
	}
	out := make([]DistPartial, 0, n)
	for li, h := range has {
		if !h {
			continue
		}
		dp := DistPartial{V: p.locals[li]}
		set(&dp, partial[li])
		out = append(out, dp)
	}
	return out
}

// Gather runs step's gather phase over the partition's edges and returns one
// partial per contributing local vertex, ascending by vertex ID. The caller
// routes each partial to the vertex's master (which may be this partition).
func (p *DistPartition) Gather(step DistStep) ([]DistPartial, error) {
	switch step {
	case DistTruncate:
		prog := step1{p.st}
		partial, has := gatherEdges(p, step, func(si, di int32) ([]graph.VertexID, bool) {
			return prog.Gather(p.locals[si], p.locals[di], &p.data[si], &p.data[di], nil)
		}, prog.Sum)
		return packPartials(p, partial, has, func(dp *DistPartial, g []graph.VertexID) { dp.Nbrs = g }), nil
	case DistRelays:
		prog := step2{p.st}
		partial, has := gatherEdges(p, step, func(si, di int32) ([]VertexSim, bool) {
			return prog.Gather(p.locals[si], p.locals[di], &p.data[si], &p.data[di], nil)
		}, prog.Sum)
		return packPartials(p, partial, has, func(dp *DistPartial, g []VertexSim) { dp.Sims = g }), nil
	case DistCombine:
		prog := step3{p.st}
		partial, has := gatherEdges(p, step, func(si, di int32) ([]PathCand, bool) {
			return prog.Gather(p.locals[si], p.locals[di], &p.data[si], &p.data[di], nil)
		}, prog.Sum)
		return packPartials(p, partial, has, func(dp *DistPartial, g []PathCand) { dp.Cands = g }), nil
	case DistTwoHop:
		prog := step3a{p.st}
		partial, has := gatherEdges(p, step, func(si, di int32) ([]PathCand, bool) {
			return prog.Gather(p.locals[si], p.locals[di], &p.data[si], &p.data[di], nil)
		}, prog.Sum)
		return packPartials(p, partial, has, func(dp *DistPartial, g []PathCand) { dp.Cands = g }), nil
	case DistCombine3:
		prog := step3b{p.st}
		partial, has := gatherEdges(p, step, func(si, di int32) ([]PathCand, bool) {
			return prog.Gather(p.locals[si], p.locals[di], &p.data[si], &p.data[di], nil)
		}, prog.Sum)
		return packPartials(p, partial, has, func(dp *DistPartial, g []PathCand) { dp.Cands = g }), nil
	default:
		return nil, fmt.Errorf("core: unknown dist step %d", int(step))
	}
}

// Apply runs step's sum+apply phase for one vertex mastered on this
// partition: it folds parts — the local partial plus any partials received
// from other partitions, in any order — and updates v's local replica, which
// becomes the authoritative copy to broadcast. parts may be empty (no edge
// anywhere contributed); apply still runs, clearing the step's output field
// exactly as the gas engine does for an empty gather.
func (p *DistPartition) Apply(step DistStep, v graph.VertexID, parts []DistPartial) error {
	li, ok := p.index[v]
	if !ok {
		return fmt.Errorf("core: apply for %v: vertex %d is not local", step, v)
	}
	d := &p.data[li]
	switch step {
	case DistTruncate:
		var sum []graph.VertexID
		for _, dp := range parts {
			sum = append(sum, dp.Nbrs...)
		}
		step1{p.st}.Apply(v, d, sum, len(sum) > 0)
	case DistRelays:
		var sum []VertexSim
		for _, dp := range parts {
			sum = append(sum, dp.Sims...)
		}
		step2{p.st}.Apply(v, d, sum, len(sum) > 0)
	case DistCombine, DistTwoHop, DistCombine3:
		var sum []PathCand
		for _, dp := range parts {
			sum = append(sum, dp.Cands...)
		}
		// The gas engine merges partials Z-sorted; concatenation needs one
		// sort to restore the grouping Apply expects. Equal-Z value order is
		// irrelevant: FoldPaths sorts each group's values before folding.
		sortPathCands(sum)
		switch step {
		case DistCombine:
			step3{p.st}.Apply(v, d, sum, len(sum) > 0)
		case DistTwoHop:
			step3a{p.st}.Apply(v, d, sum, len(sum) > 0)
		default:
			step3b{p.st}.Apply(v, d, sum, len(sum) > 0)
		}
	default:
		return fmt.Errorf("core: unknown dist step %d", int(step))
	}
	return nil
}

// State returns a copy of v's local replica, for master→mirror broadcast and
// result collection.
func (p *DistPartition) State(v graph.VertexID) (VData, bool) {
	li, ok := p.index[v]
	if !ok {
		return VData{}, false
	}
	return p.data[li], true
}

// SetState overwrites v's local replica with the master's refreshed state
// (the broadcast half of a superstep, received over the wire).
func (p *DistPartition) SetState(v graph.VertexID, d VData) error {
	li, ok := p.index[v]
	if !ok {
		return fmt.Errorf("core: refresh for vertex %d, which is not local", v)
	}
	p.data[li] = d
	return nil
}

// SortDistPartials orders partials by vertex ID (the canonical wire order;
// routing may interleave sources). Ties are impossible within one message.
func SortDistPartials(parts []DistPartial) {
	sort.Slice(parts, func(i, j int) bool { return parts[i].V < parts[j].V })
}
