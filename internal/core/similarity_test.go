package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"snaple/internal/graph"
)

// sortedList draws a strictly increasing vertex list of the given length
// from [0, space).
func sortedList(rng *rand.Rand, length, space int) []graph.VertexID {
	if length > space {
		length = space
	}
	seen := make(map[int]bool, length)
	out := make([]graph.VertexID, 0, length)
	for len(out) < length {
		x := rng.Intn(space)
		if !seen[x] {
			seen[x] = true
			out = append(out, graph.VertexID(x))
		}
	}
	sortVertexIDs(out) // helper shared with ops_test.go
	return out
}

// TestGallopMatchesMerge: the galloping intersection agrees with the linear
// merge on random sorted lists of arbitrary relative skew, in both argument
// orders.
func TestGallopMatchesMerge(t *testing.T) {
	f := func(seed int64, aLen, bLen uint8, space uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		sp := int(space%2000) + 1
		a := sortedList(rng, int(aLen), sp)
		b := sortedList(rng, int(bLen)*8, sp) // bias towards skewed pairs
		want := intersectMerge(a, b)
		if len(a) > len(b) {
			a, b = b, a
		}
		return intersectGallop(a, b) == want &&
			intersectionSize(a, b) == want &&
			intersectionSize(b, a) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestIntersectionEdgeCases covers the structured cases the property test
// might miss: empty, disjoint, subset, identical, and single-element probes
// beyond the gallop window.
func TestIntersectionEdgeCases(t *testing.T) {
	mk := func(xs ...graph.VertexID) []graph.VertexID { return xs }
	long := make([]graph.VertexID, 1000)
	for i := range long {
		long[i] = graph.VertexID(2 * i) // evens 0..1998
	}
	cases := []struct {
		name string
		a, b []graph.VertexID
		want int
	}{
		{"both-empty", nil, nil, 0},
		{"one-empty", nil, long, 0},
		{"disjoint-skewed", mk(1, 3, 5), long, 0},
		{"subset-skewed", mk(0, 500, 1998), long, 3},
		{"first-and-last", mk(0, 1999), long, 1},
		{"identical", mk(2, 4, 6), mk(2, 4, 6), 3},
		{"single-vs-long-hit", mk(1998), long, 1},
		{"single-vs-long-miss", mk(1999), long, 0},
		{"interleaved", mk(0, 1, 2, 3, 4, 5), mk(1, 3, 5, 7), 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := intersectionSize(c.a, c.b); got != c.want {
				t.Errorf("intersectionSize(a,b) = %d, want %d", got, c.want)
			}
			if got := intersectionSize(c.b, c.a); got != c.want {
				t.Errorf("intersectionSize(b,a) = %d, want %d", got, c.want)
			}
		})
	}
}

// BenchmarkIntersection measures the intersection kernel on a balanced pair
// (linear merge) and a skewed pair (galloping path) — the latter is the
// power-law common case that motivated the gallop.
func BenchmarkIntersection(b *testing.B) {
	mkRange := func(n, stride int) []graph.VertexID {
		out := make([]graph.VertexID, n)
		for i := range out {
			out[i] = graph.VertexID(i * stride)
		}
		return out
	}
	balancedA := mkRange(4096, 2)
	balancedB := mkRange(4096, 3)
	short := mkRange(16, 1023)
	long := mkRange(1<<16, 1)
	b.Run("balanced-4096x4096", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			intersectionSize(balancedA, balancedB)
		}
	})
	b.Run("skewed-16x65536", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			intersectionSize(short, long)
		}
	})
	b.Run("skewed-16x65536-merge-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			intersectMerge(short, long)
		}
	})
}
