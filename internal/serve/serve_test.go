package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snaple/internal/core"
	"snaple/internal/engine"
	"snaple/internal/graph"
	"snaple/internal/randx"
)

func testGraph(t testing.TB, n int, seed uint64) *graph.Digraph {
	t.Helper()
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			p := 8.0 / float64(n)
			if u%50 == 0 {
				p = 0.25
			}
			if randx.Float64(seed, uint64(u), uint64(v)) < p {
				edges = append(edges, graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)})
			}
		}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testConfig(t testing.TB, k int) core.Config {
	t.Helper()
	spec, err := core.ScoreByName("linearSum", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return core.Config{Score: spec, K: k, KLocal: 4, ThrGamma: 10, Seed: 42}
}

// countingBackend wraps a Backend and counts Predict calls and the source
// vertices they were scoped to.
type countingBackend struct {
	inner   engine.Backend
	calls   atomic.Int64
	sources atomic.Int64
}

func (c *countingBackend) Name() string { return c.inner.Name() }
func (c *countingBackend) Predict(g graph.View, cfg core.Config) (core.Predictions, engine.Stats, error) {
	c.calls.Add(1)
	c.sources.Add(int64(len(cfg.Sources)))
	return c.inner.Predict(g, cfg)
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postPredict(t *testing.T, url string, body string) (*http.Response, PredictResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/predict", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr PredictResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, pr
}

// TestPredictMatchesReference holds the served answers to the full-run
// oracle: for any ids and any k ≤ kmax, the response must be the reference
// predictions truncated to k.
func TestPredictMatchesReference(t *testing.T) {
	g := testGraph(t, 200, 3)
	cfg := testConfig(t, 10)
	full, err := core.ReferenceSnaple(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Graph: g, Config: cfg, BatchWindow: time.Millisecond})

	for _, k := range []int{0, 1, 5, 10} {
		ids := []uint32{0, 17, 50, 199, 17} // duplicate collapses
		body, _ := json.Marshal(PredictRequest{IDs: ids, K: k})
		resp, pr := postPredict(t, ts.URL, string(body))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("k=%d: status %d", k, resp.StatusCode)
		}
		if len(pr.Results) != 4 {
			t.Fatalf("k=%d: %d results, want 4 (duplicate id collapsed)", k, len(pr.Results))
		}
		effK := k
		if effK == 0 {
			effK = 10
		}
		for _, vr := range pr.Results {
			want := full[vr.ID]
			if len(want) > effK {
				want = want[:effK]
			}
			got := make([]core.Prediction, len(vr.Predictions))
			for i, p := range vr.Predictions {
				got[i] = core.Prediction{Vertex: graph.VertexID(p.ID), Score: p.Score}
			}
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual([]core.Prediction(want), got) {
				t.Fatalf("k=%d vertex %d: want %v, got %v", k, vr.ID, want, got)
			}
		}
	}
}

// TestMicroBatchingCoalesces pins the batching contract: requests arriving
// within one window share a single backend run, and identical ids are
// served from the cache forever after.
func TestMicroBatchingCoalesces(t *testing.T) {
	g := testGraph(t, 120, 5)
	be := &countingBackend{inner: engine.Local{Workers: 1}}
	s, err := New(Options{Graph: g, Backend: be, Config: testConfig(t, 5), BatchWindow: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Distinct id sets sent while the first request's window is open: the
	// collector folds all of them into one frontier run.
	var wg sync.WaitGroup
	results := make([]map[graph.VertexID][]core.Prediction, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows, _, err := s.predict([]graph.VertexID{graph.VertexID(i * 10), graph.VertexID(i*10 + 5)})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = rows
		}()
		if i == 0 {
			time.Sleep(30 * time.Millisecond) // let the window open first
		}
	}
	wg.Wait()
	if got := be.calls.Load(); got != 1 {
		t.Fatalf("backend ran %d times for one batch window, want 1", got)
	}
	if got := be.sources.Load(); got != 16 {
		t.Fatalf("batched run scoped to %d sources, want 16", got)
	}

	// Same ids again: pure cache hits, no new backend run.
	rows, hits, err := s.predict([]graph.VertexID{0, 5, 70})
	if err != nil {
		t.Fatal(err)
	}
	if hits != 3 {
		t.Fatalf("cache hits = %d, want 3", hits)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	if got := be.calls.Load(); got != 1 {
		t.Fatalf("cached query re-ran the backend (%d calls)", got)
	}
}

// TestTickLargerThanCache pins the eviction-under-pressure contract: when
// one tick computes more vertices than the LRU can hold, every request of
// the tick is still answered from the run's own output — cache pressure
// may evict rows but can never turn a real answer into an empty one.
func TestTickLargerThanCache(t *testing.T) {
	g := testGraph(t, 200, 3)
	cfg := testConfig(t, 5)
	full, err := core.ReferenceSnaple(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Graph: g, Config: cfg, BatchWindow: time.Millisecond, CacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ids := make([]graph.VertexID, 20) // 5x the cache capacity, one tick
	for i := range ids {
		ids[i] = graph.VertexID(i * 7)
	}
	rows, hits, err := s.predict(ids)
	if err != nil {
		t.Fatal(err)
	}
	if hits != 0 {
		t.Fatalf("cold tick reported %d hits", hits)
	}
	for _, v := range ids {
		want := full[v]
		got := rows[v]
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual([]core.Prediction(want), got) {
			t.Fatalf("vertex %d: got %v, want %v (evicted mid-tick?)", v, got, want)
		}
	}
	if s.cache.len() != 4 {
		t.Fatalf("cache holds %d entries, capacity 4", s.cache.len())
	}
}

// TestFullyCachedSkipsWindow pins the hot-path contract: a request whose
// ids are all cached is answered immediately, not after the batch window —
// an empty frontier can never benefit from batching.
func TestFullyCachedSkipsWindow(t *testing.T) {
	g := testGraph(t, 50, 1)
	s, err := New(Options{Graph: g, Config: testConfig(t, 5), BatchWindow: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.cache.put(cacheKey{vertex: 3, cfg: s.cfgKey}, []core.Prediction{{Vertex: 9, Score: 1}})

	done := make(chan struct{})
	go func() {
		defer close(done)
		rows, hits, err := s.predict([]graph.VertexID{3})
		if err != nil {
			t.Error(err)
			return
		}
		if hits != 1 || len(rows[3]) != 1 {
			t.Errorf("rows=%v hits=%d", rows, hits)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second): // far below the 1h window
		t.Fatal("fully-cached request waited for the batch window")
	}
}

// TestStatsz exercises the metrics endpoint end to end.
func TestStatsz(t *testing.T) {
	g := testGraph(t, 100, 7)
	_, ts := newTestServer(t, Options{Graph: g, Config: testConfig(t, 5), BatchWindow: time.Millisecond})

	for i := 0; i < 3; i++ {
		resp, _ := postPredict(t, ts.URL, `{"ids":[1,2,3]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests != 3 || snap.IDs != 9 {
		t.Fatalf("requests=%d ids=%d, want 3/9", snap.Requests, snap.IDs)
	}
	if snap.CacheHits < 6 { // requests 2 and 3 are fully cached
		t.Fatalf("cache_hits = %d, want >= 6", snap.CacheHits)
	}
	if snap.CacheHitRate <= 0 || snap.CacheHitRate > 1 {
		t.Fatalf("cache_hit_rate = %v", snap.CacheHitRate)
	}
	if snap.PredictRuns < 1 || snap.Batches < snap.PredictRuns {
		t.Fatalf("batches=%d runs=%d", snap.Batches, snap.PredictRuns)
	}
	if snap.QPS <= 0 {
		t.Fatalf("qps = %v", snap.QPS)
	}
	if snap.P99Ms < snap.P50Ms {
		t.Fatalf("p99 %v < p50 %v", snap.P99Ms, snap.P50Ms)
	}
	if snap.CacheSize != 3 || snap.CacheCap != 65536 {
		t.Fatalf("cache size/cap = %d/%d", snap.CacheSize, snap.CacheCap)
	}
}

// TestHealthz pins the liveness payload.
func TestHealthz(t *testing.T) {
	g := testGraph(t, 50, 1)
	_, ts := newTestServer(t, Options{Graph: g, Config: testConfig(t, 7)})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Vertices != g.NumVertices() || h.Edges != g.NumEdges() || h.MaxK != 7 || h.Engine != "local" {
		t.Fatalf("healthz = %+v", h)
	}
}

// TestPredictRejects pins the request-validation errors.
func TestPredictRejects(t *testing.T) {
	g := testGraph(t, 50, 1)
	_, ts := newTestServer(t, Options{Graph: g, Config: testConfig(t, 5), BatchMax: 8})

	cases := []struct {
		name, body string
		status     int
	}{
		{"empty ids", `{"ids":[]}`, http.StatusBadRequest},
		{"bad json", `{"ids":`, http.StatusBadRequest},
		{"k too big", `{"ids":[1],"k":6}`, http.StatusBadRequest},
		{"negative k", `{"ids":[1],"k":-1}`, http.StatusBadRequest},
		{"id out of range", `{"ids":[50]}`, http.StatusBadRequest},
		{"too many ids", fmt.Sprintf(`{"ids":%v}`, jsonIDs(9)), http.StatusBadRequest},
		{"ok", `{"ids":[1],"k":5}`, http.StatusOK},
	}
	for _, c := range cases {
		resp, _ := postPredict(t, ts.URL, c.body)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.status)
		}
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET predict: status %d", resp.StatusCode)
	}
}

func jsonIDs(n int) string {
	b, _ := json.Marshal(make([]int, n))
	return string(b)
}

// TestNewRejects pins the constructor's validation.
func TestNewRejects(t *testing.T) {
	g := testGraph(t, 20, 1)
	if _, err := New(Options{Config: testConfig(t, 5)}); err == nil {
		t.Error("nil graph accepted")
	}
	cfg := testConfig(t, 5)
	cfg.Sources = []graph.VertexID{1}
	if _, err := New(Options{Graph: g, Config: cfg}); err == nil {
		t.Error("preset Sources accepted")
	}
	bad := testConfig(t, 5)
	bad.K = -3
	if _, err := New(Options{Graph: g, Config: bad}); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestLRU pins the cache's eviction and refresh behaviour.
func TestLRU(t *testing.T) {
	c := newLRU(2)
	k := func(v int) cacheKey { return cacheKey{vertex: graph.VertexID(v), cfg: 1} }
	p := func(v int) []core.Prediction { return []core.Prediction{{Vertex: graph.VertexID(v)}} }

	c.put(k(1), p(1))
	c.put(k(2), p(2))
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("1 evicted early")
	}
	c.put(k(3), p(3)) // evicts 2 (1 was refreshed by the get)
	if _, ok := c.get(k(2)); ok {
		t.Fatal("2 survived eviction")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("1 evicted despite being MRU")
	}
	if got, _ := c.get(k(3)); !reflect.DeepEqual(got, p(3)) {
		t.Fatalf("3 = %v", got)
	}
	c.put(k(3), p(9)) // refresh in place
	if got, _ := c.get(k(3)); !reflect.DeepEqual(got, p(9)) {
		t.Fatalf("refresh lost: %v", got)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
	// A different config fingerprint is a different entry.
	other := cacheKey{vertex: 3, cfg: 2}
	if _, ok := c.get(other); ok {
		t.Fatal("config fingerprint ignored")
	}
}

// chainGraph builds 0→1→2→3→4 and 5→6→7→8→9: two components whose reverse
// closures never meet, so frontier-aware invalidation is exactly testable.
func chainGraph(t testing.TB) *graph.Digraph {
	t.Helper()
	var edges []graph.Edge
	for _, c := range [][2]int{{0, 4}, {5, 9}} {
		for u := c[0]; u < c[1]; u++ {
			edges = append(edges, graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(u + 1)})
		}
	}
	g, err := graph.FromEdges(10, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestMutationInvalidatesFrontier pins the frontier-aware invalidation
// contract: a mutation batch drops exactly the cached rows inside the
// mutated sources' reverse closure — rows outside it keep serving from
// cache, rows inside it are recomputed on next query.
func TestMutationInvalidatesFrontier(t *testing.T) {
	g := chainGraph(t)
	be := &countingBackend{inner: engine.Local{Workers: 1}}
	s, ts := newTestServer(t, Options{
		Graph: g, Backend: be, Mutable: true,
		Config: testConfig(t, 5), BatchWindow: time.Millisecond,
	})

	// Warm the cache: one row in each component.
	for _, id := range []string{`{"ids":[2]}`, `{"ids":[7]}`} {
		if resp, _ := postPredict(t, ts.URL, id); resp.StatusCode != http.StatusOK {
			t.Fatalf("warm predict: status %d", resp.StatusCode)
		}
	}
	warmRuns := be.calls.Load()

	// Mutate inside the first component: add 2→0. The dirty reverse closure
	// of source 2 at Paths=2 is {2, 1, 0} — vertex 7 is untouched.
	resp, body := postJSON(t, ts.URL+"/v1/edges", `{"add":[[2,0]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edges: status %d: %s", resp.StatusCode, body)
	}
	var er EdgesResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Epoch != 1 || er.Edges != g.NumEdges()+1 || er.OverlayRows != 1 {
		t.Fatalf("edges response = %+v", er)
	}
	if er.Invalidated != 1 {
		t.Fatalf("invalidated %d rows, want 1 (the cached row for vertex 2)", er.Invalidated)
	}

	// The untouched component still serves from cache: no new backend run.
	if _, pr := postPredict(t, ts.URL, `{"ids":[7]}`); pr.CacheHits != 1 {
		t.Fatalf("vertex 7 after unrelated mutation: %d cache hits, want 1", pr.CacheHits)
	}
	if got := be.calls.Load(); got != warmRuns {
		t.Fatalf("unrelated cached vertex re-ran the backend (%d runs, warm %d)", got, warmRuns)
	}

	// The mutated vertex recomputes, and against the mutated view: 2 now
	// has out-edges {0, 3}, so its predictions must match the reference
	// over the live view.
	_, pr := postPredict(t, ts.URL, `{"ids":[2]}`)
	if pr.CacheHits != 0 {
		t.Fatalf("mutated vertex served stale cache (%d hits)", pr.CacheHits)
	}
	if got := be.calls.Load(); got != warmRuns+1 {
		t.Fatalf("mutated vertex ran backend %d times, want %d", got, warmRuns+1)
	}
	view, _ := s.current()
	full, err := core.ReferenceSnaple(view, s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := full[2]
	got := make([]core.Prediction, len(pr.Results[0].Predictions))
	for i, p := range pr.Results[0].Predictions {
		got[i] = core.Prediction{Vertex: graph.VertexID(p.ID), Score: p.Score}
	}
	if len(want) != 0 || len(got) != 0 {
		if !reflect.DeepEqual([]core.Prediction(want), got) {
			t.Fatalf("post-mutation row for 2 = %v, want %v", got, want)
		}
	}
}

// TestMutationMatchesReference holds a mutated server to the full-run
// oracle on a non-trivial graph: after a mixed add/remove batch, every
// served row must equal the reference predictions over the live view.
func TestMutationMatchesReference(t *testing.T) {
	g := testGraph(t, 200, 3)
	cfg := testConfig(t, 10)
	s, ts := newTestServer(t, Options{Graph: g, Mutable: true, Config: cfg, BatchWindow: time.Millisecond})

	// Warm some of the queried rows so the batch mixes hits and misses.
	postPredict(t, ts.URL, `{"ids":[0,17,50]}`)

	drop := g.OutNeighbors(17)[0]
	body := fmt.Sprintf(`{"add":[[0,199],[17,42],[100,3]],"remove":[[17,%d]]}`, drop)
	if resp, b := postJSON(t, ts.URL+"/v1/edges", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("edges: status %d: %s", resp.StatusCode, b)
	}

	resp, pr := postPredict(t, ts.URL, `{"ids":[0,17,50,100,199]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d", resp.StatusCode)
	}
	view, _ := s.current()
	full, err := core.ReferenceSnaple(view, s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, vr := range pr.Results {
		want := full[vr.ID]
		got := make([]core.Prediction, len(vr.Predictions))
		for i, p := range vr.Predictions {
			got[i] = core.Prediction{Vertex: graph.VertexID(p.ID), Score: p.Score}
		}
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual([]core.Prediction(want), got) {
			t.Fatalf("vertex %d: got %v, want %v", vr.ID, got, want)
		}
	}
}

// TestCompactEndpoint pins the compaction lifecycle: POST /v1/compact folds
// the overlay into a fresh CSR (epoch bump, overlay drained), persists a
// loadable .sgr when configured, leaves the cache intact (the compacted
// view is bit-identical), and the persisted snapshot equals the live view.
func TestCompactEndpoint(t *testing.T) {
	g := testGraph(t, 120, 5)
	sgr := t.TempDir() + "/live.sgr"
	s, ts := newTestServer(t, Options{
		Graph: g, Mutable: true, CompactPath: sgr,
		Config: testConfig(t, 5), BatchWindow: time.Millisecond,
	})

	if resp, b := postJSON(t, ts.URL+"/v1/edges", `{"add":[[1,100],[2,50]],"remove":[[1,100]]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("edges: status %d: %s", resp.StatusCode, b)
	}
	postPredict(t, ts.URL, `{"ids":[40]}`) // cache a row across the compaction

	resp, body := postJSON(t, ts.URL+"/v1/compact", ``)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact: status %d: %s", resp.StatusCode, body)
	}
	var cr CompactResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Epoch != 2 || cr.Path != sgr {
		t.Fatalf("compact response = %+v", cr)
	}

	view, epoch := s.current()
	if epoch != 2 {
		t.Fatalf("serving epoch %d after compaction, want 2", epoch)
	}
	csr, ok := graph.AsCSR(view)
	if !ok {
		t.Fatal("post-compaction view still carries an overlay")
	}

	// The persisted snapshot is loadable and identical to the live CSR.
	f, err := os.Open(sgr)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := graph.ReadSnapshot(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumVertices() != csr.NumVertices() || loaded.NumEdges() != csr.NumEdges() {
		t.Fatalf("snapshot %v != live %v", loaded, csr)
	}
	if !reflect.DeepEqual(loaded.Edges(), csr.Edges()) {
		t.Fatal("persisted snapshot's edges differ from the live CSR")
	}

	// Compaction must not cost the cache: the pre-compaction row still hits.
	if _, pr := postPredict(t, ts.URL, `{"ids":[40]}`); pr.CacheHits != 1 {
		t.Fatalf("cached row lost across compaction (%d hits)", pr.CacheHits)
	}
}

// TestAutoCompact pins the background trigger: once the overlay reaches
// CompactAt dirty rows, a compaction runs without being asked.
func TestAutoCompact(t *testing.T) {
	g := testGraph(t, 80, 9)
	s, ts := newTestServer(t, Options{
		Graph: g, Mutable: true, CompactAt: 2,
		Config: testConfig(t, 5), BatchWindow: time.Millisecond,
	})
	if resp, b := postJSON(t, ts.URL+"/v1/edges", `{"add":[[3,60],[4,61]]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("edges: status %d: %s", resp.StatusCode, b)
	}
	deadline := time.After(10 * time.Second)
	for {
		if view, _ := s.current(); view.(*graph.Delta).OverlayRows() == 0 {
			return
		}
		select {
		case <-deadline:
			t.Fatal("overlay not compacted within 10s of crossing CompactAt")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestEdgesRejects pins the mutation endpoint's validation.
func TestEdgesRejects(t *testing.T) {
	g := testGraph(t, 50, 1)
	_, frozen := newTestServer(t, Options{Graph: g, Config: testConfig(t, 5)})
	if resp, _ := postJSON(t, frozen.URL+"/v1/edges", `{"add":[[1,2]]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("frozen server accepted a mutation (status %d)", resp.StatusCode)
	}
	if resp, _ := postJSON(t, frozen.URL+"/v1/compact", ``); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("frozen server accepted a compaction (status %d)", resp.StatusCode)
	}

	_, ts := newTestServer(t, Options{Graph: g, Mutable: true, Config: testConfig(t, 5)})
	cases := []struct {
		name, body string
		status     int
	}{
		{"bad json", `{"add":`, http.StatusBadRequest},
		{"triple", `{"add":[[1,2,3]]}`, http.StatusBadRequest},
		{"single", `{"remove":[[1]]}`, http.StatusBadRequest},
		{"out of range", `{"add":[[1,50]]}`, http.StatusBadRequest},
		{"empty batch ok", `{}`, http.StatusOK},
		{"ok", `{"add":[[1,2]],"remove":[[1,2]]}`, http.StatusOK},
	}
	for _, c := range cases {
		if resp, _ := postJSON(t, ts.URL+"/v1/edges", c.body); resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.status)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/edges")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET edges: status %d", resp.StatusCode)
	}
}

// fleetLikeBackend fakes the one method the server uses to recognise a
// resident fleet.
type fleetLikeBackend struct{ engine.Local }

func (fleetLikeBackend) FleetInfo() engine.FleetInfo { return engine.FleetInfo{} }

// TestMutableRejects pins the mutable-mode constructor validation.
func TestMutableRejects(t *testing.T) {
	g := testGraph(t, 20, 1)
	if _, err := New(Options{Graph: g, Mutable: true, Backend: fleetLikeBackend{}, Config: testConfig(t, 5)}); err == nil {
		t.Error("mutable server accepted a resident fleet backend")
	}
	absent := graph.Edge{Src: 1, Dst: 7}
search:
	for u := 0; u < g.NumVertices(); u++ {
		for v := 0; v < g.NumVertices(); v++ {
			if u != v && !g.HasEdge(graph.VertexID(u), graph.VertexID(v)) {
				absent = graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)}
				break search
			}
		}
	}
	dirty, err := graph.NewDelta(g).Apply([]graph.Edge{absent}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Graph: dirty, Mutable: true, Config: testConfig(t, 5)}); err == nil {
		t.Error("mutable server accepted a dirty overlay as base")
	}
	if s, err := New(Options{Graph: g.WithoutEdges(nil), Mutable: true, Config: testConfig(t, 5)}); err != nil {
		t.Errorf("mutable server rejected a clean overlay: %v", err)
	} else {
		s.Close()
	}
}

// TestLRUInvalidate pins the predicate sweep.
func TestLRUInvalidate(t *testing.T) {
	c := newLRU(8)
	for v := 0; v < 6; v++ {
		c.put(cacheKey{vertex: graph.VertexID(v), cfg: 1}, nil)
	}
	n := c.invalidate(func(k cacheKey) bool { return k.vertex%2 == 0 })
	if n != 3 || c.len() != 3 {
		t.Fatalf("invalidate dropped %d (len %d), want 3 (len 3)", n, c.len())
	}
	for v := 0; v < 6; v++ {
		_, ok := c.get(cacheKey{vertex: graph.VertexID(v), cfg: 1})
		if want := v%2 == 1; ok != want {
			t.Errorf("vertex %d cached=%v, want %v", v, ok, want)
		}
	}
}

// TestConfigFingerprint ensures distinct scoring configs key distinct cache
// entries.
func TestConfigFingerprint(t *testing.T) {
	base := testConfig(t, 5)
	mods := []func(*core.Config){
		func(c *core.Config) { c.K = 6 },
		func(c *core.Config) { c.KLocal = 5 },
		func(c *core.Config) { c.ThrGamma = 11 },
		func(c *core.Config) { c.Seed = 43 },
		func(c *core.Config) { c.Policy = core.SelectRnd },
		func(c *core.Config) { c.Paths = 3 },
		func(c *core.Config) { c.Score.Alpha = 0.5 },
		func(c *core.Config) { c.Score.Name = "geomSum" },
	}
	seen := map[uint64]int{configFingerprint(base): -1}
	for i, mod := range mods {
		cfg := base
		mod(&cfg)
		fp := configFingerprint(cfg)
		if prev, dup := seen[fp]; dup {
			t.Errorf("mod %d collides with %d", i, prev)
		}
		seen[fp] = i
	}
}

// TestServeClose ensures Close unblocks pending requests with an error
// instead of hanging them.
func TestServeClose(t *testing.T) {
	g := testGraph(t, 50, 1)
	s, err := New(Options{Graph: g, Config: testConfig(t, 5), BatchWindow: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, _, err := s.predict([]graph.VertexID{1})
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond) // request inside the (huge) window
	s.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("pending request succeeded after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending request hung after Close")
	}
}
