package serve

import (
	"errors"
	"sort"
	"sync"
	"time"

	"snaple/internal/engine"
)

// latencyRingSize bounds the latency samples kept for the percentile
// report; old samples are overwritten in ring order.
const latencyRingSize = 4096

// qpsWindow is the sliding window the QPS figure is computed over.
const qpsWindow = 60 * time.Second

// serverStats aggregates the serving metrics behind /statsz. Counters are
// cumulative since start; latency percentiles and QPS are computed over the
// recent sample ring at read time.
type serverStats struct {
	mu sync.Mutex

	requests    int64 // /v1/predict requests answered (success or error)
	ids         int64 // vertices asked for, summed over requests
	cacheHits   int64 // ids answered from the LRU
	cacheMisses int64 // ids that needed a frontier run
	batches     int64 // micro-batches assembled
	runs        int64 // backend Predict calls (batches with ≥1 uncached id)
	errors      int64 // requests that failed

	// Fleet health (dist backend only; zero elsewhere). The worker gauges
	// reflect the most recent run — the server's current view of the fleet —
	// while failovers/dialRetries/partitionsLost accumulate across runs.
	distRuns       int64 // runs that reported dist fleet stats
	replicas       int   // replica factor of the last dist run
	workersTotal   int   // fleet size of the last dist run
	workersDead    int   // workers declared dead during the last dist run
	failovers      int64 // cumulative mid-run primary promotions
	dialRetries    int64 // cumulative redialed connect/spawn attempts
	partitionsLost int64 // runs that failed with ErrPartitionLost
	degraded       bool  // last dist run lost a partition; cleared by a success

	// Live-graph counters (mutable servers only; zero elsewhere).
	mutations    int64  // /v1/edges batches applied
	edgesAdded   int64  // edges submitted for addition, summed over batches
	edgesRemoved int64  // edges submitted for removal, summed over batches
	invalidated  int64  // cached rows dropped by mutation frontiers
	compactions  int64  // overlay-to-CSR compactions completed
	compactErrs  int64  // compactions whose snapshot persistence failed
	epoch        uint64 // serving view's version after the last transition

	ring  [latencyRingSize]sample
	ringN int64 // total samples ever recorded; ring index = ringN % size
}

type sample struct {
	at time.Time
	ms float64
}

// observe records one answered request.
func (s *serverStats) observe(lat time.Duration, ids, hits int, failed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	s.ids += int64(ids)
	s.cacheHits += int64(hits)
	s.cacheMisses += int64(ids - hits)
	if failed {
		s.errors++
	}
	s.ring[s.ringN%latencyRingSize] = sample{at: time.Now(), ms: float64(lat.Microseconds()) / 1000}
	s.ringN++
}

// observeBatch records one assembled micro-batch and whether it ran the
// backend.
func (s *serverStats) observeBatch(ran bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches++
	if ran {
		s.runs++
	}
}

// observeRun records one backend run's fleet health. Only dist runs carry
// fleet stats (st.Replicas > 0); a partition-lost failure flips the server
// degraded — some partition has zero live replicas, so /healthz reports 503
// until a later run completes against a recovered fleet.
func (s *serverStats) observeRun(st engine.Stats, runErr error) {
	if st.Replicas == 0 && !errors.Is(runErr, engine.ErrPartitionLost) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.distRuns++
	s.replicas = st.Replicas
	s.workersTotal = st.Workers
	s.workersDead = st.WorkersDead
	s.failovers += int64(st.Failovers)
	s.dialRetries += int64(st.DialRetries)
	switch {
	case errors.Is(runErr, engine.ErrPartitionLost):
		s.partitionsLost++
		s.degraded = true
	case runErr == nil:
		s.degraded = false
	}
}

// observeMutation records one applied /v1/edges batch.
func (s *serverStats) observeMutation(added, removed, invalidated int, epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mutations++
	s.edgesAdded += int64(added)
	s.edgesRemoved += int64(removed)
	s.invalidated += int64(invalidated)
	s.epoch = epoch
}

// observeCompaction records one completed overlay compaction.
func (s *serverStats) observeCompaction(epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compactions++
	if epoch > s.epoch {
		s.epoch = epoch
	}
}

// observeCompactError records a compaction whose snapshot write failed.
func (s *serverStats) observeCompactError() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compactErrs++
}

// isDegraded reports whether the last dist run lost a partition outright.
func (s *serverStats) isDegraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// Snapshot is the /statsz payload.
type Snapshot struct {
	Requests     int64   `json:"requests"`
	IDs          int64   `json:"ids"`
	Errors       int64   `json:"errors"`
	QPS          float64 `json:"qps"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	Batches      int64   `json:"batches"`
	PredictRuns  int64   `json:"predict_runs"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	CacheSize    int     `json:"cache_size"`
	CacheCap     int     `json:"cache_capacity"`
	UptimeSec    float64 `json:"uptime_sec"`

	// Live-graph counters (all zero unless the server is mutable).
	Mutations        int64  `json:"mutations,omitempty"`
	EdgesAdded       int64  `json:"edges_added,omitempty"`
	EdgesRemoved     int64  `json:"edges_removed,omitempty"`
	Invalidated      int64  `json:"invalidated,omitempty"`
	Compactions      int64  `json:"compactions,omitempty"`
	CompactionErrors int64  `json:"compaction_errors,omitempty"`
	Epoch            uint64 `json:"epoch,omitempty"`

	// Fleet health (all zero unless the backend is dist).
	DistRuns       int64 `json:"dist_runs,omitempty"`
	Replicas       int   `json:"replicas,omitempty"`
	WorkersTotal   int   `json:"workers_total,omitempty"`
	WorkersLive    int   `json:"workers_live,omitempty"`
	WorkersDead    int   `json:"workers_dead,omitempty"`
	Failovers      int64 `json:"failovers,omitempty"`
	DialRetries    int64 `json:"dial_retries,omitempty"`
	PartitionsLost int64 `json:"partitions_lost,omitempty"`
	Degraded       bool  `json:"degraded,omitempty"`
}

// snapshot computes the report. Percentiles cover the ring's samples (the
// last latencyRingSize requests); QPS counts ring samples inside the last
// qpsWindow — when the ring wrapped within the window, the rate is
// extrapolated from the span the ring still covers.
func (s *serverStats) snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Requests: s.requests, IDs: s.ids, Errors: s.errors,
		Batches: s.batches, PredictRuns: s.runs,
		CacheHits: s.cacheHits, CacheMisses: s.cacheMisses,
		Mutations: s.mutations, EdgesAdded: s.edgesAdded,
		EdgesRemoved: s.edgesRemoved, Invalidated: s.invalidated,
		Compactions: s.compactions, CompactionErrors: s.compactErrs,
		Epoch:    s.epoch,
		DistRuns: s.distRuns, Replicas: s.replicas,
		WorkersTotal: s.workersTotal, WorkersDead: s.workersDead,
		WorkersLive: s.workersTotal - s.workersDead,
		Failovers:   s.failovers, DialRetries: s.dialRetries,
		PartitionsLost: s.partitionsLost, Degraded: s.degraded,
	}
	if total := s.cacheHits + s.cacheMisses; total > 0 {
		snap.CacheHitRate = float64(s.cacheHits) / float64(total)
	}
	n := int(min(s.ringN, latencyRingSize))
	if n == 0 {
		return snap
	}
	lats := make([]float64, 0, n)
	now := time.Now()
	recent := 0
	var oldest time.Time
	for i := 0; i < n; i++ {
		smp := s.ring[i]
		lats = append(lats, smp.ms)
		if age := now.Sub(smp.at); age <= qpsWindow {
			recent++
			if oldest.IsZero() || smp.at.Before(oldest) {
				oldest = smp.at
			}
		}
	}
	sort.Float64s(lats)
	snap.P50Ms = percentile(lats, 0.50)
	snap.P99Ms = percentile(lats, 0.99)
	if recent > 0 {
		span := qpsWindow.Seconds()
		if s.ringN > latencyRingSize && recent == n { // ring wrapped inside the window
			span = now.Sub(oldest).Seconds()
		}
		if span > 0 {
			snap.QPS = float64(recent) / span
		}
	}
	return snap
}

// percentile returns the p-quantile of an ascending sample set
// (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
