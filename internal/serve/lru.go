package serve

import (
	"container/list"
	"sync"

	"snaple/internal/core"
	"snaple/internal/graph"
)

// cacheKey identifies one cached result: the queried vertex plus a
// fingerprint of the prediction configuration that produced it. The server
// runs one fixed config today, but keying on it means a future per-request
// config override (or a config change across a snapshot reload) can never
// serve stale rows.
type cacheKey struct {
	vertex graph.VertexID
	cfg    uint64
}

// lruCache is a mutex-guarded LRU over per-vertex prediction lists. Empty
// results are cached too (as non-nil empty slices): "this user has no
// recommendations" is just as expensive to recompute as a full answer.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent
	items map[cacheKey]*list.Element
}

type lruEntry struct {
	key   cacheKey
	preds []core.Prediction
}

func newLRU(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[cacheKey]*list.Element, capacity),
	}
}

// get returns the cached predictions for key and whether they were present,
// marking the entry most-recently-used.
func (c *lruCache) get(key cacheKey) ([]core.Prediction, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).preds, true
}

// put inserts (or refreshes) key, evicting the least-recently-used entry
// when over capacity.
func (c *lruCache) put(key cacheKey, preds []core.Prediction) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).preds = preds
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, preds: preds})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

// len returns the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// invalidate removes every entry whose key satisfies pred and returns how
// many were dropped. One pass over the key set under the lock: the caller
// (a mutation batch) has already narrowed "may have changed" to a vertex
// set, so the predicate is a bitmap probe, not a recomputation.
func (c *lruCache) invalidate(pred func(cacheKey) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		if key := el.Value.(*lruEntry).key; pred(key) {
			c.order.Remove(el)
			delete(c.items, key)
			dropped++
		}
		el = next
	}
	return dropped
}
