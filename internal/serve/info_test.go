package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"snaple/internal/engine"
)

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: %v", url, err)
		}
	}
	return resp
}

func TestInfo(t *testing.T) {
	g := testGraph(t, 150, 3)
	s, ts := newTestServer(t, Options{Graph: g, Config: testConfig(t, 7)})

	var info InfoResponse
	if resp := getJSON(t, ts.URL+"/v1/info", &info); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if info.Engine != "local" || info.Vertices != g.NumVertices() || info.Edges != g.NumEdges() ||
		info.MaxK != 7 || info.Score != "linearSum" {
		t.Errorf("info = %+v", info)
	}
	if want := fmt.Sprintf("%016x", s.cfgKey); info.ConfigFingerprint != want {
		t.Errorf("config fingerprint %q, want %q", info.ConfigFingerprint, want)
	}
	if info.Fleet != nil {
		t.Errorf("local backend reported a fleet: %+v", info.Fleet)
	}
}

// TestInfoFleet checks the topology block two front-ends sharing a fleet
// would compare: shard/replica counts and the pack fingerprint.
func TestInfoFleet(t *testing.T) {
	g := testGraph(t, 150, 3)
	f, err := engine.OpenFleet(g, engine.FleetOptions{InProc: 3, Replicas: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	_, ts := newTestServer(t, Options{Graph: g, Backend: f, Config: testConfig(t, 5)})

	var info InfoResponse
	if resp := getJSON(t, ts.URL+"/v1/info", &info); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if info.Engine != "fleet" || info.Fleet == nil {
		t.Fatalf("info = %+v", info)
	}
	fi := f.FleetInfo()
	want := FleetInfoJSON{Shards: 3, Replicas: 2, Workers: 6, Fingerprint: fmt.Sprintf("%016x", fi.Fingerprint)}
	if *info.Fleet != want {
		t.Errorf("fleet block = %+v, want %+v", *info.Fleet, want)
	}
}

// TestErrorShape pins the uniform error contract: every endpoint, every
// failure mode, one JSON shape — {"error":{"code","message"}} — with a
// stable code vocabulary.
func TestErrorShape(t *testing.T) {
	g := testGraph(t, 100, 3)
	_, ts := newTestServer(t, Options{Graph: g, Config: testConfig(t, 5)})

	cases := []struct {
		name, method, path, body string
		status                   int
		code                     string
	}{
		{"predict-get", http.MethodGet, "/v1/predict", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"predict-bad-json", http.MethodPost, "/v1/predict", "{", http.StatusBadRequest, "bad_request"},
		{"predict-empty-ids", http.MethodPost, "/v1/predict", `{"ids":[]}`, http.StatusBadRequest, "bad_request"},
		{"predict-bad-vertex", http.MethodPost, "/v1/predict", `{"ids":[99999]}`, http.StatusBadRequest, "bad_request"},
		{"predict-bad-k", http.MethodPost, "/v1/predict", `{"ids":[1],"k":50}`, http.StatusBadRequest, "bad_request"},
		{"info-post", http.MethodPost, "/v1/info", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"healthz-post", http.MethodPost, "/healthz", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"statsz-post", http.MethodPost, "/statsz", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"unknown-path", http.MethodGet, "/v2/nothing", "", http.StatusNotFound, "not_found"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != c.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, c.status, raw)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type %q", ct)
			}
			var er errorResponse
			if err := json.Unmarshal(raw, &er); err != nil {
				t.Fatalf("error body is not the uniform shape: %s", raw)
			}
			if er.Error.Code != c.code || er.Error.Message == "" {
				t.Errorf("error = %+v, want code %q with a message", er.Error, c.code)
			}
		})
	}
}
