// Package serve is the online half of the repository: a long-lived
// prediction server over the query-scoped engine layer, the way GiGL puts
// one inference API over interchangeable batch and online backends and SNAP
// serves neighborhood-scoped queries from a tuned in-memory core.
//
// The server loads a graph once (ideally a binary .sgr snapshot — disk
// speed, zero per-edge work) and answers "top-k for these users" requests
// from it:
//
//   - POST /v1/predict {"ids":[...], "k":K} — per-vertex top-k predictions;
//   - POST /v1/edges {"add":[[u,v],...], "remove":[...]} — live mutation
//     (Options.Mutable), applied as a graph.Delta overlay batch;
//   - POST /v1/compact — fold the overlay back into a fresh CSR;
//   - GET /healthz — liveness plus the loaded graph's shape;
//   - GET /statsz — QPS, p50/p99 latency, cache hit rate, batch counters.
//
// Concurrent requests are micro-batched: a collector goroutine gathers
// everything that arrives within BatchWindow (or until BatchMax distinct
// uncached vertices accumulate), unions the uncached vertices into one
// Config.Sources frontier, and runs a single scoped engine.Backend.Predict
// for the whole tick — N concurrent users cost one closure computation, not
// N. Results land in an LRU keyed by (vertex, config fingerprint), so hot
// vertices are served without touching the engine at all; both hit and miss
// answers slice the same cached row, making responses for a vertex
// identical regardless of which request computed them.
//
// With Options.Mutable the served graph is live: POST /v1/edges applies a
// mutation batch as a copy-on-write graph.Delta overlay (no CSR rebuild,
// readers keep a consistent view), and the cache is invalidated
// frontier-aware — a reverse closure walk (core.DirtySources) identifies
// exactly which cached rows a batch may have changed, so unrelated hot
// vertices keep serving from cache across mutations. When the overlay
// outgrows CompactAt dirty rows (or on POST /v1/compact) a background
// compaction folds it back into a fresh CSR, optionally persisted as a new
// .sgr snapshot via temp-file-plus-atomic-rename; compaction is
// bit-identical, so the cache survives it untouched.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"snaple/internal/core"
	"snaple/internal/engine"
	"snaple/internal/graph"
)

// Options configures a Server.
type Options struct {
	// Graph is the loaded graph to serve. Required. Mutable servers need a
	// compact CSR underneath (a *graph.Digraph, or a *graph.Delta with an
	// empty overlay); frozen servers serve any View as-is.
	Graph graph.View
	// Mutable enables POST /v1/edges: the server wraps Graph in a
	// graph.Live and serves the current view of it, invalidating cached
	// rows frontier-aware on every batch. Requires an in-memory backend
	// (resident fleets pin a frozen pack and cannot follow mutations).
	Mutable bool
	// CompactAt triggers a background compaction when the overlay reaches
	// this many dirty rows (0 = never auto-compact). Mutable only.
	CompactAt int
	// CompactPath, when set, persists each compaction's CSR as a fresh .sgr
	// snapshot at this path (written to a temp file and renamed into place,
	// so a crash never leaves a torn snapshot). Mutable only.
	CompactPath string
	// Backend executes the scoped prediction runs (default engine.Local{}).
	Backend engine.Backend
	// Config is the prediction configuration. Its K is the server's maximum
	// servable k: requests may ask for any k up to it. Sources must be
	// empty (the batcher owns the field).
	Config core.Config
	// BatchWindow is how long the collector waits for more requests after
	// the first of a tick (default 2ms). Larger windows trade first-request
	// latency for bigger shared frontiers.
	BatchWindow time.Duration
	// BatchMax caps the distinct uncached vertices folded into one run
	// (default 4096); a full window is cut short when reached.
	BatchMax int
	// CacheSize is the LRU capacity in vertices (default 65536).
	CacheSize int
	// RunTimeout bounds each backend run (0 = unbounded). On a
	// cancellation-aware backend (dist) the deadline closes the worker
	// connections, so a wedged fleet costs the batch an error instead of
	// wedging the server; in-memory backends ignore it.
	RunTimeout time.Duration
}

// Server answers online prediction queries over one loaded graph. Create
// with New, expose with Handler, stop with Close.
type Server struct {
	be      engine.Backend
	cfg     core.Config
	cfgKey  uint64
	window  time.Duration
	maxIDs  int
	runTO   time.Duration
	cache   *lruCache
	queue   chan *batchReq
	stop    chan struct{}
	done    chan struct{}
	stats   serverStats
	started time.Time

	// The serving view. mu orders view transitions against cache writes:
	// a mutation swaps (view, epoch) and invalidates stale rows atomically,
	// and a finished batch fills the cache only while its epoch is still
	// current — a run that raced a mutation answers its own requests (they
	// were admitted against its view) but leaves no stale rows behind.
	mu    sync.Mutex
	view  graph.View
	epoch uint64
	nv    int // vertex count; fixed for the server's lifetime

	// Mutation state (nil/zero unless Options.Mutable).
	live        *graph.Live
	compactAt   int
	compactPath string
	compactMu   sync.Mutex  // serialises compaction work
	compacting  atomic.Bool // single-flight gate for the background trigger
}

// batchReq is one in-flight /v1/predict request: its vertices, the rows
// that were already cached when the collector folded it into a tick
// (snapshotted then, so later cache eviction cannot lose them), and the
// channel its assembled rows (or error) comes back on.
type batchReq struct {
	ids    []graph.VertexID
	cached map[graph.VertexID][]core.Prediction
	resp   chan batchResp
}

type batchResp struct {
	rows map[graph.VertexID][]core.Prediction
	hits int
	err  error
}

// New validates opts and starts the server's collector goroutine.
func New(opts Options) (*Server, error) {
	if opts.Graph == nil {
		return nil, errors.New("serve: nil graph")
	}
	if opts.Backend == nil {
		opts.Backend = engine.Local{}
	}
	if len(opts.Config.Sources) != 0 {
		return nil, errors.New("serve: Config.Sources must be empty (scoping is per batch)")
	}
	cfg, err := opts.Config.Normalized()
	if err != nil {
		return nil, err
	}
	if opts.BatchWindow <= 0 {
		opts.BatchWindow = 2 * time.Millisecond
	}
	if opts.BatchMax <= 0 {
		opts.BatchMax = 4096
	}
	if opts.CacheSize <= 0 {
		opts.CacheSize = 65536
	}
	s := &Server{
		be:      opts.Backend,
		cfg:     cfg,
		cfgKey:  configFingerprint(cfg),
		window:  opts.BatchWindow,
		maxIDs:  opts.BatchMax,
		runTO:   opts.RunTimeout,
		cache:   newLRU(opts.CacheSize),
		queue:   make(chan *batchReq),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		started: time.Now(),
		view:    opts.Graph,
		nv:      opts.Graph.NumVertices(),
	}
	if opts.Mutable {
		csr, ok := graph.AsCSR(opts.Graph)
		if !ok {
			return nil, errors.New("serve: mutable serving needs a compact CSR base (a *graph.Digraph, or a Delta with an empty overlay)")
		}
		if _, fleet := opts.Backend.(interface{ FleetInfo() engine.FleetInfo }); fleet {
			return nil, errors.New("serve: mutable serving is incompatible with a resident fleet backend (the fleet pins a frozen pack)")
		}
		// The frontier-aware invalidation walk runs over in-edges.
		csr.EnsureInEdges()
		s.live = graph.NewLive(csr)
		s.view = s.live.View()
		s.compactAt = opts.CompactAt
		s.compactPath = opts.CompactPath
	}
	go s.collector()
	return s, nil
}

// current returns the view a new batch (or info report) should run against,
// with its epoch.
func (s *Server) current() (graph.View, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.view, s.epoch
}

// configFingerprint hashes the parts of a Config that determine a vertex's
// predictions, for the cache key (FNV-1a over the printable form; the score
// is identified by name and alpha, the same pair the wire protocol ships).
func configFingerprint(cfg core.Config) uint64 {
	desc := fmt.Sprintf("%s|%g|%d|%d|%d|%d|%d|%d",
		cfg.Score.Name, cfg.Score.Alpha, cfg.K, cfg.KLocal, cfg.ThrGamma,
		int(cfg.Policy), cfg.Paths, cfg.Seed)
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(desc); i++ {
		h ^= uint64(desc[i])
		h *= prime
	}
	return h
}

// MaxK returns the largest k a request may ask for (the config's K).
func (s *Server) MaxK() int { return s.cfg.K }

// Close stops the collector; queued requests fail with a shutdown error.
func (s *Server) Close() {
	close(s.stop)
	<-s.done
}

// errShutdown is returned to requests caught mid-shutdown.
var errShutdown = errors.New("serve: server shutting down")

// collector is the micro-batching loop: it blocks for the tick's first
// request, gathers more until the window closes (or BatchMax distinct
// uncached vertices accumulate), then answers the whole tick from one
// scoped run plus the cache. A tick whose requests are fully cached is
// answered immediately — waiting out the window could only help uncached
// work, and there is none. A request whose ids would push the tick past
// BatchMax is carried into the next tick instead of over-growing this one.
func (s *Server) collector() {
	defer close(s.done)
	var carry *batchReq
	for {
		first := carry
		carry = nil
		if first == nil {
			select {
			case <-s.stop:
				return
			case first = <-s.queue:
			}
		}
		batch := []*batchReq{first}
		uncached := make(map[graph.VertexID]bool)
		// A single request's distinct uncached ids always fit: the handler
		// caps len(ids) at maxIDs.
		s.fold(first, uncached)
		if len(uncached) > 0 {
			timer := time.NewTimer(s.window)
		gather:
			for len(uncached) < s.maxIDs {
				select {
				case <-s.stop:
					timer.Stop()
					for _, r := range batch {
						r.resp <- batchResp{err: errShutdown}
					}
					return
				case r := <-s.queue:
					if len(uncached)+s.freshCount(r.ids, uncached) > s.maxIDs {
						carry = r // starts the next tick
						break gather
					}
					batch = append(batch, r)
					s.fold(r, uncached)
				case <-timer.C:
					break gather
				}
			}
			timer.Stop()
		}
		s.runBatch(batch, uncached)
	}
}

// fold splits a request's ids between the tick's frontier (cache misses,
// added to acc) and the request's own cached-row snapshot. Snapshotting at
// fold time means the tick's later cache churn — including this very tick
// evicting entries to make room for its own results — cannot lose a row
// that was present when the request was admitted.
func (s *Server) fold(r *batchReq, acc map[graph.VertexID]bool) {
	r.cached = make(map[graph.VertexID][]core.Prediction)
	for _, v := range r.ids {
		if _, have := r.cached[v]; have || acc[v] {
			continue
		}
		if row, ok := s.cache.get(cacheKey{vertex: v, cfg: s.cfgKey}); ok {
			r.cached[v] = row
		} else {
			acc[v] = true
		}
	}
}

// freshCount reports how many of ids are cache misses not already in acc —
// the frontier growth folding them would cause.
func (s *Server) freshCount(ids []graph.VertexID, acc map[graph.VertexID]bool) int {
	n := 0
	seen := make(map[graph.VertexID]bool, len(ids))
	for _, v := range ids {
		if seen[v] || acc[v] {
			continue
		}
		seen[v] = true
		if _, ok := s.cache.get(cacheKey{vertex: v, cfg: s.cfgKey}); !ok {
			n++
		}
	}
	return n
}

// runBatch executes one tick: a single frontier run over the batch's
// uncached vertices, cache fill, then per-request assembly. Fresh rows are
// served from the run's own output — the cache is only consulted for
// vertices cached before the tick, so cache pressure (a tick larger than
// the LRU) can evict rows but never corrupt answers.
func (s *Server) runBatch(batch []*batchReq, uncached map[graph.VertexID]bool) {
	s.stats.observeBatch(len(uncached) > 0)
	fresh := make(map[graph.VertexID][]core.Prediction, len(uncached))
	if len(uncached) > 0 {
		sources := make([]graph.VertexID, 0, len(uncached))
		for v := range uncached {
			sources = append(sources, v)
		}
		cfg := s.cfg
		cfg.Sources = sources
		ctx := context.Background()
		if s.runTO > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.runTO)
			defer cancel()
		}
		view, epoch := s.current()
		preds, rst, err := engine.PredictWithContext(ctx, s.be, view, cfg)
		s.stats.observeRun(rst, err)
		if err != nil {
			for _, r := range batch {
				r.resp <- batchResp{err: err}
			}
			return
		}
		for _, v := range sources {
			// Clone: the engine's rows alias large shared per-batch append
			// buffers, and a cached row must not pin a whole batch's worth
			// of memory. Empty results are kept too — "no recommendations"
			// is as expensive to recompute as a full answer.
			fresh[v] = append(make([]core.Prediction, 0, len(preds[v])), preds[v]...)
		}
		// Fill the cache only while this run's view is still current: a
		// mutation that landed mid-run has already invalidated its dirty
		// rows, and caching results computed from the superseded view would
		// re-poison them. The batch's own requests are still answered from
		// fresh below — they were admitted against this view.
		s.mu.Lock()
		if s.epoch == epoch {
			for v, row := range fresh {
				s.cache.put(cacheKey{vertex: v, cfg: s.cfgKey}, row)
			}
		}
		s.mu.Unlock()
	}
	for _, r := range batch {
		rows := make(map[graph.VertexID][]core.Prediction, len(r.ids))
		hits := 0
		for _, v := range r.ids {
			if _, seen := rows[v]; seen {
				continue
			}
			if row, ok := r.cached[v]; ok {
				rows[v] = row
				hits++
				continue
			}
			// Every id is either in the fold-time snapshot or in this
			// tick's frontier; fresh rows come straight from the run, so
			// cache pressure can evict but never corrupt an answer.
			rows[v] = fresh[v]
		}
		r.resp <- batchResp{rows: rows, hits: hits}
	}
}

// predict runs one query through the batcher and returns the per-vertex
// rows (capped at the server's K; the handler slices to the request's k).
func (s *Server) predict(ids []graph.VertexID) (map[graph.VertexID][]core.Prediction, int, error) {
	req := &batchReq{ids: ids, resp: make(chan batchResp, 1)}
	select {
	case <-s.stop:
		return nil, 0, errShutdown
	case s.queue <- req:
	}
	resp := <-req.resp
	return resp.rows, resp.hits, resp.err
}

// ---- HTTP layer ----

// PredictRequest is the /v1/predict body.
type PredictRequest struct {
	// IDs are the vertices to predict for (1 to BatchMax per request).
	IDs []uint32 `json:"ids"`
	// K is the predictions wanted per vertex (0 = the server's maximum; at
	// most the server's maximum).
	K int `json:"k"`
}

// PredictionJSON is one recommended edge target.
type PredictionJSON struct {
	ID    uint32  `json:"id"`
	Score float64 `json:"score"`
}

// VertexResult is one queried vertex's answer. Predictions is empty (not
// null) when the vertex has no recommendations.
type VertexResult struct {
	ID          uint32           `json:"id"`
	Predictions []PredictionJSON `json:"predictions"`
}

// PredictResponse is the /v1/predict reply. Results are in request order
// (first occurrence, for duplicated ids).
type PredictResponse struct {
	Results   []VertexResult `json:"results"`
	CacheHits int            `json:"cache_hits"`
	ServedMs  float64        `json:"served_ms"`
}

// HealthResponse is the /healthz reply.
type HealthResponse struct {
	Status    string  `json:"status"`
	Engine    string  `json:"engine"`
	Vertices  int     `json:"vertices"`
	Edges     int     `json:"edges"`
	MaxK      int     `json:"max_k"`
	UptimeSec float64 `json:"uptime_sec"`
}

// InfoResponse is the /v1/info reply: what exactly this instance serves —
// the graph's shape, the backend, the fingerprint of the prediction config
// (the cache key component; two front-ends answering interchangeably must
// agree on it) and, when the backend is a resident fleet, the fleet
// topology and pack fingerprint.
type InfoResponse struct {
	Engine   string `json:"engine"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	MaxK     int    `json:"max_k"`
	Score    string `json:"score"`
	// ConfigFingerprint is the hex form of the config hash keying the result
	// cache.
	ConfigFingerprint string `json:"config_fingerprint"`
	// Mutable reports whether this instance accepts POST /v1/edges.
	Mutable bool `json:"mutable,omitempty"`
	// Epoch is the serving view's version (mutable instances only; bumps on
	// every mutation batch and every compaction).
	Epoch uint64 `json:"epoch,omitempty"`
	// OverlayRows is the number of vertices with pending mutations
	// (mutable instances only).
	OverlayRows int `json:"overlay_rows,omitempty"`
	// Fleet is present only when the backend is a resident fleet.
	Fleet     *FleetInfoJSON `json:"fleet,omitempty"`
	UptimeSec float64        `json:"uptime_sec"`
}

// FleetInfoJSON is the resident fleet's topology as served by /v1/info.
type FleetInfoJSON struct {
	Shards   int `json:"shards"`
	Replicas int `json:"replicas"`
	Workers  int `json:"workers"`
	// Fingerprint is the hex fleet fingerprint (graph + cut parameters) the
	// attach handshake verifies.
	Fingerprint string `json:"fingerprint"`
}

// Handler returns the server's HTTP mux: POST /v1/predict, POST /v1/edges,
// POST /v1/compact, GET /v1/info, GET /healthz, GET /statsz. Every error —
// any endpoint, any status — is a JSON body of the shape
// {"error":{"code":"...","message":"..."}}.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/edges", s.handleEdges)
	mux.HandleFunc("/v1/compact", s.handleCompact)
	mux.HandleFunc("/v1/info", s.handleInfo)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusNotFound, "no such endpoint %s", r.URL.Path)
	})
	return mux
}

// EdgesRequest is the /v1/edges body: edge batches as [src, dst] pairs.
// Adds are applied before removes (graph.Delta semantics); adding an
// existing edge or removing an absent one is a no-op, self-loops are
// ignored, and endpoints must lie inside the loaded vertex set — mutation
// cannot grow the graph.
type EdgesRequest struct {
	Add    [][]uint32 `json:"add"`
	Remove [][]uint32 `json:"remove"`
}

// EdgesResponse is the /v1/edges reply: the new view's epoch and shape,
// plus how much cached state the batch cost.
type EdgesResponse struct {
	// Epoch is the published view's version after this batch.
	Epoch uint64 `json:"epoch"`
	// Edges is the view's edge count after this batch.
	Edges int `json:"edges"`
	// Invalidated is how many cached rows the batch's dirty frontier
	// covered — the rows that will be recomputed on next query.
	Invalidated int `json:"invalidated"`
	// OverlayRows is the number of vertices with pending mutations (the
	// quantity auto-compaction watches).
	OverlayRows int `json:"overlay_rows"`
}

// CompactResponse is the /v1/compact reply.
type CompactResponse struct {
	// Epoch is the compacted view's version.
	Epoch uint64 `json:"epoch"`
	// Edges is the compacted CSR's edge count.
	Edges int `json:"edges"`
	// Path is the snapshot file the compaction persisted, when configured.
	Path string `json:"path,omitempty"`
}

// parseEdgePairs converts [src, dst] pairs into edges, validating shape and
// range (n is the vertex count).
func parseEdgePairs(pairs [][]uint32, n int, field string) ([]graph.Edge, error) {
	if len(pairs) == 0 {
		return nil, nil
	}
	edges := make([]graph.Edge, len(pairs))
	for i, p := range pairs {
		if len(p) != 2 {
			return nil, fmt.Errorf("%s[%d]: want a [src, dst] pair, got %d elements", field, i, len(p))
		}
		if int(p[0]) >= n || int(p[1]) >= n {
			return nil, fmt.Errorf("%s[%d]: edge (%d,%d) outside [0,%d)", field, i, p[0], p[1], n)
		}
		edges[i] = graph.Edge{Src: graph.VertexID(p[0]), Dst: graph.VertexID(p[1])}
	}
	return edges, nil
}

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.live == nil {
		httpError(w, http.StatusBadRequest, "this server is frozen; start it with mutation enabled (Options.Mutable / -mutable)")
		return
	}
	var req EdgesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	add, err := parseEdgePairs(req.Add, s.nv, "add")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	remove, err := parseEdgePairs(req.Remove, s.nv, "remove")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.applyEdges(w, add, remove)
}

// applyEdges runs one validated mutation batch: publish the new view, walk
// the reverse frontier of the touched sources, and drop exactly the cached
// rows that walk covers — all under mu, so a concurrent batch fill cannot
// interleave a stale write between the swap and the invalidation.
func (s *Server) applyEdges(w http.ResponseWriter, add, remove []graph.Edge) {
	s.mu.Lock()
	nd, err := s.live.Apply(add, remove)
	if err != nil {
		s.mu.Unlock()
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	dirty := core.DirtySources(nd, add, remove, s.cfg.Paths)
	invalidated := s.cache.invalidate(func(k cacheKey) bool {
		return k.cfg == s.cfgKey && dirty.Contains(k.vertex)
	})
	s.view, s.epoch = nd, nd.Epoch()
	overlay := nd.OverlayRows()
	s.mu.Unlock()

	s.stats.observeMutation(len(add), len(remove), invalidated, nd.Epoch())
	if s.compactAt > 0 && overlay >= s.compactAt {
		s.triggerCompact()
	}
	writeJSON(w, http.StatusOK, EdgesResponse{
		Epoch:       nd.Epoch(),
		Edges:       nd.NumEdges(),
		Invalidated: invalidated,
		OverlayRows: overlay,
	})
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.live == nil {
		httpError(w, http.StatusBadRequest, "this server is frozen; start it with mutation enabled (Options.Mutable / -mutable)")
		return
	}
	nd, err := s.compactNow()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "compact: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, CompactResponse{
		Epoch: nd.Epoch(),
		Edges: nd.NumEdges(),
		Path:  s.compactPath,
	})
}

// triggerCompact starts a background compaction unless one is already in
// flight (single-flight: overlapping triggers coalesce).
func (s *Server) triggerCompact() {
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.compacting.Store(false)
		// compactNow records any persistence failure on /statsz; the
		// in-memory compaction itself cannot fail.
		_, _ = s.compactNow()
	}()
}

// compactNow folds the live overlay into a fresh CSR, persists it when
// configured, and publishes the compacted view. Readers never stall: the
// compacted view is bit-identical to the overlay it replaces, so the cache
// survives compaction untouched.
func (s *Server) compactNow() (*graph.Delta, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	nd := s.live.Compact()
	var err error
	if s.compactPath != "" {
		err = writeSnapshotAtomic(s.compactPath, nd.Base())
	}
	s.mu.Lock()
	// A mutation may have landed on the compacted base already (its epoch
	// is newer); never roll the serving view backwards.
	if nd.Epoch() > s.epoch {
		s.view, s.epoch = nd, nd.Epoch()
	}
	s.mu.Unlock()
	s.stats.observeCompaction(nd.Epoch())
	if err != nil {
		s.stats.observeCompactError()
	}
	return nd, err
}

// writeSnapshotAtomic writes g as a .sgr snapshot via a temp file in the
// target directory plus an atomic rename, so a crash mid-write can never
// leave a torn snapshot at path.
func writeSnapshotAtomic(path string, g *graph.Digraph) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := graph.WriteSnapshot(f, g); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	start := time.Now()
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if len(req.IDs) == 0 {
		httpError(w, http.StatusBadRequest, "ids is empty")
		return
	}
	if len(req.IDs) > s.maxIDs {
		httpError(w, http.StatusBadRequest, "%d ids exceeds the per-request maximum %d", len(req.IDs), s.maxIDs)
		return
	}
	k := req.K
	switch {
	case k == 0:
		k = s.cfg.K
	case k < 0 || k > s.cfg.K:
		httpError(w, http.StatusBadRequest, "k=%d outside [1,%d] (the server computes top-%d)", k, s.cfg.K, s.cfg.K)
		return
	}
	n := s.nv
	ids := make([]graph.VertexID, len(req.IDs))
	for i, id := range req.IDs {
		if int(id) >= n {
			httpError(w, http.StatusBadRequest, "vertex %d outside [0,%d)", id, n)
			return
		}
		ids[i] = graph.VertexID(id)
	}

	rows, hits, err := s.predict(ids)
	lat := time.Since(start)
	if err != nil {
		s.stats.observe(lat, len(ids), 0, true)
		httpError(w, http.StatusInternalServerError, "predict: %v", err)
		return
	}
	resp := PredictResponse{
		Results:   make([]VertexResult, 0, len(rows)),
		CacheHits: hits,
		ServedMs:  float64(lat.Microseconds()) / 1000,
	}
	emitted := make(map[graph.VertexID]bool, len(rows))
	for _, v := range ids {
		if emitted[v] {
			continue
		}
		emitted[v] = true
		row := rows[v]
		vr := VertexResult{ID: uint32(v), Predictions: make([]PredictionJSON, 0, min(k, len(row)))}
		for i, p := range row {
			if i == k {
				break
			}
			vr.Predictions = append(vr.Predictions, PredictionJSON{ID: uint32(p.Vertex), Score: p.Score})
		}
		resp.Results = append(resp.Results, vr)
	}
	s.stats.observe(lat, len(ids), hits, false)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	view, epoch := s.current()
	info := InfoResponse{
		Engine:            s.be.Name(),
		Vertices:          view.NumVertices(),
		Edges:             view.NumEdges(),
		MaxK:              s.cfg.K,
		Score:             s.cfg.Score.Name,
		ConfigFingerprint: fmt.Sprintf("%016x", s.cfgKey),
		Mutable:           s.live != nil,
		Epoch:             epoch,
		UptimeSec:         time.Since(s.started).Seconds(),
	}
	if d, ok := view.(*graph.Delta); ok {
		info.OverlayRows = d.OverlayRows()
	}
	if fb, ok := s.be.(interface{ FleetInfo() engine.FleetInfo }); ok {
		fi := fb.FleetInfo()
		info.Fleet = &FleetInfoJSON{
			Shards:      fi.Shards,
			Replicas:    fi.Replicas,
			Workers:     fi.Workers,
			Fingerprint: fmt.Sprintf("%016x", fi.Fingerprint),
		}
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	// A partition with zero live replicas means queries routed to it cannot
	// be answered: report 503 so load balancers drain this instance until a
	// run completes against a recovered fleet.
	status, code := "ok", http.StatusOK
	if s.stats.isDegraded() {
		status, code = "degraded", http.StatusServiceUnavailable
	}
	view, _ := s.current()
	writeJSON(w, code, HealthResponse{
		Status:    status,
		Engine:    s.be.Name(),
		Vertices:  view.NumVertices(),
		Edges:     view.NumEdges(),
		MaxK:      s.cfg.K,
		UptimeSec: time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	snap := s.stats.snapshot()
	snap.CacheSize = s.cache.len()
	snap.CacheCap = s.cache.cap
	snap.UptimeSec = time.Since(s.started).Seconds()
	writeJSON(w, http.StatusOK, snap)
}

// errorResponse is the uniform error shape of every endpoint:
// {"error":{"code":"...","message":"..."}}. The code is a small stable
// vocabulary derived from the status, so clients can switch on it without
// parsing messages.
type errorResponse struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: errorBody{
		Code:    errorCode(status),
		Message: fmt.Sprintf(format, args...),
	}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
