package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	f := func(seed, a, b uint64) bool {
		return Hash64(seed, a, b) == Hash64(seed, a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHash64OrderSensitive(t *testing.T) {
	// (a, b) and (b, a) must hash differently almost always; a collision for
	// these fixed distinct words would indicate the fold is commutative.
	if Hash64(1, 2, 3) == Hash64(1, 3, 2) {
		t.Fatal("Hash64 is insensitive to word order")
	}
	if Hash64(1, 2) == Hash64(2, 2) {
		t.Fatal("Hash64 is insensitive to seed")
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed, a uint64) bool {
		v := Float64(seed, a)
		return v >= 0 && v < 1 && !math.IsNaN(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Uniformity(t *testing.T) {
	// Coarse uniformity check: bucket 100k draws into 10 deciles and require
	// each to hold 10% +/- 1.5%.
	const n = 100000
	var buckets [10]int
	for i := uint64(0); i < n; i++ {
		buckets[int(Float64(42, i)*10)]++
	}
	for d, c := range buckets {
		frac := float64(c) / n
		if frac < 0.085 || frac > 0.115 {
			t.Errorf("decile %d holds %.3f of draws, want ~0.1", d, frac)
		}
	}
}

func TestUint64nRange(t *testing.T) {
	f := func(seed, a uint64, nRaw uint16) bool {
		n := uint64(nRaw) + 1
		return Uint64n(n, seed, a) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64nCoverage(t *testing.T) {
	// Every residue of a small modulus must be reachable.
	const n = 7
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 1000; i++ {
		seen[Uint64n(n, 5, i)] = true
	}
	if len(seen) != n {
		t.Fatalf("only %d of %d residues reached", len(seen), n)
	}
}

func TestMul64(t *testing.T) {
	tests := []struct {
		x, y   uint64
		hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, tt := range tests {
		hi, lo := mul64(tt.x, tt.y)
		if hi != tt.hi || lo != tt.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", tt.x, tt.y, hi, lo, tt.hi, tt.lo)
		}
	}
}

func TestNewRandDeterministic(t *testing.T) {
	r1 := NewRand(9, 1)
	r2 := NewRand(9, 1)
	for i := 0; i < 16; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatal("NewRand streams diverge for identical keys")
		}
	}
	if NewRand(9, 1).Uint64() == NewRand(9, 2).Uint64() {
		t.Fatal("NewRand streams collide for different keys")
	}
}
