// Package randx provides deterministic, splittable pseudo-randomness.
//
// All sampling decisions in this repository (neighbourhood truncation, edge
// removal, synthetic graph generation, tie shuffling) are keyed by a seed and
// the identities involved, rather than drawn from a shared sequential stream.
// This makes every decision independent of evaluation order, so a computation
// distributed over any number of partitions produces bit-identical results to
// its serial reference implementation.
package randx

import "math/rand"

// splitmix64 advances the splitmix64 state and returns the mixed output.
// It is the finalizer recommended by Steele et al. (SplitMix, OOPSLA'14) and
// passes BigCrush; we use it as a keyed hash rather than as a stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash64 mixes a seed with an arbitrary number of 64-bit words into a single
// uniformly distributed 64-bit value. Hash64(seed) != seed in general; every
// additional word folds in another splitmix64 round, so (seed, a, b) and
// (seed, b, a) hash differently.
func Hash64(seed uint64, words ...uint64) uint64 {
	h := splitmix64(seed)
	for _, w := range words {
		h = splitmix64(h ^ w)
	}
	return h
}

// Float64 returns a deterministic draw in [0, 1) keyed by seed and words.
func Float64(seed uint64, words ...uint64) float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(Hash64(seed, words...)>>11) / (1 << 53)
}

// Uint64n returns a deterministic draw in [0, n) keyed by seed and words.
// n must be positive.
func Uint64n(n uint64, seed uint64, words ...uint64) uint64 {
	// Multiply-shift reduction avoids modulo bias for n << 2^64.
	h := Hash64(seed, words...)
	hi, _ := mul64(h, n)
	return hi
}

// mul64 returns the 128-bit product of x and y as (hi, lo) without importing
// math/bits at every call site.
func mul64(x, y uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	x0, x1 := x&mask, x>>32
	y0, y1 := y&mask, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return hi, lo
}

// NewRand returns a sequential *rand.Rand whose stream is keyed by seed and
// words. Use it where an ordered stream is genuinely wanted (e.g. generator
// loops); use Hash64/Float64 for order-independent decisions.
func NewRand(seed uint64, words ...uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(Hash64(seed, words...))))
}
