package gen

import (
	"fmt"
	"sort"

	"snaple/internal/graph"
	"snaple/internal/randx"
)

// AttributeConfig parameterises community-correlated vertex attributes
// (hashed tags / interests), the input of the content-based similarity
// extension (paper Section 3.1).
type AttributeConfig struct {
	// N is the number of vertices (required).
	N int
	// Communities must match the graph generator's community count.
	Communities int
	// VocabPerCommunity is the size of each community's tag pool
	// (default 20).
	VocabPerCommunity int
	// TagsPerVertex is how many tags each vertex carries (default 5).
	TagsPerVertex int
	// Noise is the probability a tag is drawn from the global vocabulary
	// instead of the community pool (default 0.2).
	Noise float64
}

func (c AttributeConfig) withDefaults() AttributeConfig {
	if c.VocabPerCommunity == 0 {
		c.VocabPerCommunity = 20
	}
	if c.TagsPerVertex == 0 {
		c.TagsPerVertex = 5
	}
	if c.Noise == 0 {
		c.Noise = 0.2
	}
	return c
}

// Attributes draws one sorted, duplicate-free tag set per vertex. Vertices
// of the same community (round-robin assignment, as in Community) share a
// tag pool, so attribute overlap correlates with the homophily of the
// generated graphs. Deterministic in seed.
func Attributes(cfg AttributeConfig, seed uint64) ([][]uint32, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 1 || cfg.Communities < 1 || cfg.Communities > cfg.N {
		return nil, fmt.Errorf("gen: attributes: N=%d communities=%d", cfg.N, cfg.Communities)
	}
	if cfg.Noise < 0 || cfg.Noise > 1 {
		return nil, fmt.Errorf("gen: attributes: noise=%v outside [0,1]", cfg.Noise)
	}
	vocab := cfg.Communities * cfg.VocabPerCommunity
	rng := randx.NewRand(seed, 0xA7)
	out := make([][]uint32, cfg.N)
	for u := 0; u < cfg.N; u++ {
		comm := u % cfg.Communities
		base := comm * cfg.VocabPerCommunity
		set := make(map[uint32]struct{}, cfg.TagsPerVertex)
		for len(set) < cfg.TagsPerVertex {
			var tag uint32
			if rng.Float64() < cfg.Noise {
				tag = uint32(rng.Intn(vocab))
			} else {
				tag = uint32(base + rng.Intn(cfg.VocabPerCommunity))
			}
			set[tag] = struct{}{}
		}
		tags := make([]uint32, 0, len(set))
		for t := range set {
			tags = append(tags, t)
		}
		sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
		out[u] = tags
	}
	return out, nil
}

// AttributeHomophily measures how much more attribute overlap graph
// neighbours have than random pairs: the mean attribute-Jaccard across
// edges. Used by tests to validate the correlation the content extension
// relies on.
func AttributeHomophily(g *graph.Digraph, attrs [][]uint32) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	var total float64
	g.ForEachEdge(func(u, v graph.VertexID) {
		total += jaccardU32(attrs[u], attrs[v])
	})
	return total / float64(g.NumEdges())
}

func jaccardU32(a, b []uint32) float64 {
	i, j, inter := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
