// Package gen produces seeded synthetic graphs.
//
// The paper evaluates on five public graphs (gowalla, pokec, orkut,
// livejournal, twitter-rv). Those datasets are not available offline, so the
// evaluation harness substitutes graphs from the generators in this package,
// matched on the properties link prediction is sensitive to: heavy-tailed
// out-degree distributions (Figure 6a-c) and high clustering / homophily
// (Section 2.2). All generators are deterministic in their seed.
package gen

import (
	"fmt"
	"math"

	"snaple/internal/graph"
	"snaple/internal/randx"
)

// ErdosRenyi returns a G(n,m) digraph: m directed edges drawn uniformly
// (self-loops and duplicates removed, so the result can hold slightly fewer
// than m edges). Its clustering is ~m/n², which makes it the low-homophily
// control in tests.
func ErdosRenyi(n, m int, seed uint64) (*graph.Digraph, error) {
	if n <= 1 || m < 0 {
		return nil, fmt.Errorf("gen: ErdosRenyi(n=%d, m=%d): need n>1, m>=0", n, m)
	}
	rng := randx.NewRand(seed, 0xE2)
	b := graph.NewBuilder(n)
	b.Grow(m)
	for i := 0; i < m; i++ {
		b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
	}
	return b.Build()
}

// BarabasiAlbert grows a preferential-attachment digraph: vertices arrive one
// at a time and connect m out-edges to existing vertices with probability
// proportional to their current degree. Out-degree is ~m for late vertices;
// in-degree is power-law.
func BarabasiAlbert(n, m int, seed uint64) (*graph.Digraph, error) {
	if n < 2 || m < 1 || m >= n {
		return nil, fmt.Errorf("gen: BarabasiAlbert(n=%d, m=%d): need n>=2, 1<=m<n", n, m)
	}
	rng := randx.NewRand(seed, 0xBA)
	b := graph.NewBuilder(n)
	b.Grow(n * m)
	// endpoints holds every edge endpoint ever seen; a uniform pick from it
	// is a degree-proportional pick.
	endpoints := make([]graph.VertexID, 0, 2*n*m)
	// Seed clique among the first m+1 vertices.
	for u := 0; u <= m; u++ {
		v := (u + 1) % (m + 1)
		b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		endpoints = append(endpoints, graph.VertexID(u), graph.VertexID(v))
	}
	for u := m + 1; u < n; u++ {
		for j := 0; j < m; j++ {
			t := endpoints[rng.Intn(len(endpoints))]
			if int(t) == u {
				t = graph.VertexID(rng.Intn(u)) // fall back to uniform among elders
			}
			b.AddEdge(graph.VertexID(u), t)
			endpoints = append(endpoints, graph.VertexID(u), t)
		}
	}
	return b.Build()
}

// WattsStrogatz builds the small-world model: a ring lattice where each
// vertex points at its k nearest clockwise successors, with every edge
// rewired to a uniform target with probability beta. Low beta keeps the
// lattice's very high clustering.
func WattsStrogatz(n, k int, beta float64, seed uint64) (*graph.Digraph, error) {
	if n < 3 || k < 1 || k >= n || beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: WattsStrogatz(n=%d, k=%d, beta=%v): invalid", n, k, beta)
	}
	rng := randx.NewRand(seed, 0x35)
	b := graph.NewBuilder(n)
	b.Grow(n * k)
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + j) % n
			if rng.Float64() < beta {
				v = rng.Intn(n)
			}
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	return b.Build()
}

// RMAT samples 2^scale vertices and edgeFactor*2^scale edges from the
// recursive-matrix distribution of Chakrabarti et al., the standard stand-in
// for very large skewed social graphs (our twitter-rv analog ingredient).
// a, b, c are the upper-left, upper-right and lower-left quadrant
// probabilities; the lower-right is 1-a-b-c.
func RMAT(scale, edgeFactor int, a, b, c float64, seed uint64) (*graph.Digraph, error) {
	if scale < 1 || scale > 30 || edgeFactor < 1 {
		return nil, fmt.Errorf("gen: RMAT(scale=%d, edgeFactor=%d): invalid", scale, edgeFactor)
	}
	d := 1 - a - b - c
	if a < 0 || b < 0 || c < 0 || d < -1e-9 {
		return nil, fmt.Errorf("gen: RMAT probabilities (%v,%v,%v) must sum to <=1", a, b, c)
	}
	n := 1 << scale
	m := edgeFactor * n
	rng := randx.NewRand(seed, 0x47)
	bld := graph.NewBuilder(n)
	bld.Grow(m)
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		bld.AddEdge(graph.VertexID(u), graph.VertexID(v))
	}
	return bld.Build()
}

// powerLawDegree draws a Pareto-distributed degree in [minDeg, maxDeg] with
// tail exponent gamma (>1). u must be in [0,1).
func powerLawDegree(u float64, minDeg, maxDeg int, gamma float64) int {
	d := float64(minDeg) * math.Pow(1-u, -1/(gamma-1))
	if d > float64(maxDeg) {
		return maxDeg
	}
	return int(d)
}
