package gen

import (
	"fmt"

	"snaple/internal/graph"
	"snaple/internal/randx"
)

// CommunityConfig parameterises the community/homophily generator, the model
// behind every dataset analog in internal/eval. It combines three edge
// sources so that the resulting graphs have the properties 2-hop link
// prediction relies on (Section 2.2 of the paper):
//
//   - power-law out-degrees (Pareto with exponent Gamma in [MinDeg, MaxDeg]),
//   - homophily: a PLocal fraction of edges stay inside the vertex's
//     community,
//   - triangle closure: a PClose fraction of edges copy a neighbour's
//     neighbour, which drives the clustering coefficient up,
//   - the remainder attach preferentially to global degree (power-law tail).
type CommunityConfig struct {
	N           int     // number of vertices (required, >= 4)
	Communities int     // number of communities (required, >= 1)
	MinDeg      int     // minimum out-degree (default 2)
	MaxDeg      int     // maximum out-degree (default N-1)
	Gamma       float64 // degree tail exponent (default 2.3, typical for social graphs)
	PLocal      float64 // probability an edge targets the own community (default 0.6)
	PClose      float64 // probability an edge closes a triangle (default 0.25)
	Symmetric   bool    // duplicate each edge in both directions (undirected datasets)
	WithInEdges bool    // materialise reverse adjacency
}

func (c CommunityConfig) withDefaults() CommunityConfig {
	if c.MinDeg == 0 {
		c.MinDeg = 2
	}
	if c.MaxDeg == 0 {
		c.MaxDeg = c.N - 1
	}
	if c.Gamma == 0 {
		c.Gamma = 2.3
	}
	if c.PLocal == 0 {
		c.PLocal = 0.6
	}
	if c.PClose == 0 {
		c.PClose = 0.25
	}
	return c
}

func (c CommunityConfig) validate() error {
	switch {
	case c.N < 4:
		return fmt.Errorf("gen: community: N=%d, need >= 4", c.N)
	case c.Communities < 1 || c.Communities > c.N:
		return fmt.Errorf("gen: community: Communities=%d with N=%d", c.Communities, c.N)
	case c.MinDeg < 1 || c.MaxDeg < c.MinDeg:
		return fmt.Errorf("gen: community: degree range [%d,%d]", c.MinDeg, c.MaxDeg)
	case c.Gamma <= 1:
		return fmt.Errorf("gen: community: Gamma=%v, need > 1", c.Gamma)
	case c.PLocal < 0 || c.PClose < 0 || c.PLocal+c.PClose > 1:
		return fmt.Errorf("gen: community: PLocal=%v PClose=%v", c.PLocal, c.PClose)
	}
	return nil
}

// CommunityOf returns the community index the generator assigned to vertex u
// (round-robin), exposed so examples can label their users.
func CommunityOf(u graph.VertexID, communities int) int {
	return int(u) % communities
}

// Community generates a graph under cfg. Same (cfg, seed) pairs yield
// identical graphs.
func Community(cfg CommunityConfig, seed uint64) (*graph.Digraph, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := randx.NewRand(seed, 0xC0)
	n, comm := cfg.N, cfg.Communities

	// Members of each community, in vertex order (round-robin assignment).
	members := make([][]graph.VertexID, comm)
	for u := 0; u < n; u++ {
		c := u % comm
		members[c] = append(members[c], graph.VertexID(u))
	}

	// adjacency under construction, needed for triangle closure.
	adj := make([][]graph.VertexID, n)
	// endpoints: uniform pick == degree-proportional pick (global and
	// per-community, the latter modelling the local preferential attachment
	// of real social graphs).
	endpoints := make([]graph.VertexID, 0, 4*n)
	commEndpoints := make([][]graph.VertexID, comm)

	b := graph.NewBuilder(n).Symmetrize(cfg.Symmetric).WithInEdges(cfg.WithInEdges)

	addEdge := func(u, v graph.VertexID) {
		b.AddEdge(u, v)
		adj[u] = append(adj[u], v)
		endpoints = append(endpoints, u, v)
		commEndpoints[int(u)%comm] = append(commEndpoints[int(u)%comm], u)
		commEndpoints[int(v)%comm] = append(commEndpoints[int(v)%comm], v)
	}

	for u := 0; u < n; u++ {
		deg := powerLawDegree(rng.Float64(), cfg.MinDeg, cfg.MaxDeg, cfg.Gamma)
		for e := 0; e < deg; e++ {
			var v graph.VertexID
			r := rng.Float64()
			switch {
			case r < cfg.PClose && len(adj[u]) > 0:
				// Close a triangle: step to a random existing neighbour, then
				// to one of its neighbours.
				w := adj[u][rng.Intn(len(adj[u]))]
				if len(adj[w]) == 0 {
					v = graph.VertexID(rng.Intn(n))
				} else {
					v = adj[w][rng.Intn(len(adj[w]))]
				}
			case r < cfg.PClose+cfg.PLocal:
				// Stay in the community: mostly degree-proportional (local
				// preferential attachment), partly uniform exploration.
				if ce := commEndpoints[u%comm]; len(ce) > 0 && rng.Float64() < 0.85 {
					v = ce[rng.Intn(len(ce))]
				} else {
					mine := members[u%comm]
					v = mine[rng.Intn(len(mine))]
				}
			case len(endpoints) > 0:
				// Global preferential attachment.
				v = endpoints[rng.Intn(len(endpoints))]
			default:
				v = graph.VertexID(rng.Intn(n))
			}
			if int(v) == u {
				continue // builder would drop the loop anyway; skip early
			}
			addEdge(graph.VertexID(u), v)
		}
	}
	return b.Build()
}

// IntraCommunityFraction measures homophily: the fraction of edges whose
// endpoints share a community under the generator's round-robin assignment.
func IntraCommunityFraction(g *graph.Digraph, communities int) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	intra := 0
	g.ForEachEdge(func(u, v graph.VertexID) {
		if CommunityOf(u, communities) == CommunityOf(v, communities) {
			intra++
		}
	})
	return float64(intra) / float64(g.NumEdges())
}
