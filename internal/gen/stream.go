package gen

import (
	"fmt"
	"math"

	"snaple/internal/graph"
	"snaple/internal/randx"
)

// PowerLawStream is a deterministic, shardable stream of skewed random
// edges — the generator behind the scale experiment, where buffering the
// edge list (16 bytes per draw) would dwarf the CSR being measured. Edge i
// is derived purely by keyed hashing of (Seed, i): both endpoints are
// floor(N·u^Skew) draws, which makes vertex k's expected degree ∝
// k^(1/Skew-1) — a heavy-tailed profile like the paper's datasets, with a
// few large hubs and a long sparse tail.
//
// Because each edge depends only on its index, any contiguous index range
// can be generated independently and any replay is identical — exactly the
// graph.EdgeStream contract, so shards can stream in parallel straight
// into BuildStream (or to a text sink) without coordination.
type PowerLawStream struct {
	N     int     // vertices
	Edges int64   // raw edge draws (self-loops and duplicates removed at build)
	Skew  float64 // ≥ 1; exponent a in id = floor(N·u^a); 2 has a fast path
	Seed  uint64
}

// NewPowerLawStream validates the parameters.
func NewPowerLawStream(n int, edges int64, skew float64, seed uint64) (*PowerLawStream, error) {
	if n < 2 || edges < 0 || skew < 1 || math.IsNaN(skew) {
		return nil, fmt.Errorf("gen: PowerLawStream(n=%d, edges=%d, skew=%g): need n>1, edges>=0, skew>=1", n, edges, skew)
	}
	return &PowerLawStream{N: n, Edges: edges, Skew: skew, Seed: seed}, nil
}

// ForEachShard yields shard's contiguous range of the edge sequence. It is
// a graph.EdgeStream (modulo the method value), safe to run concurrently
// for distinct shards.
func (s *PowerLawStream) ForEachShard(shard, shards int, yield func(u, v graph.VertexID)) {
	lo := int64(shard) * s.Edges / int64(shards)
	hi := (int64(shard) + 1) * s.Edges / int64(shards)
	for i := lo; i < hi; i++ {
		yield(s.pick(uint64(i), 0), s.pick(uint64(i), 1))
	}
}

func (s *PowerLawStream) pick(i, side uint64) graph.VertexID {
	u := randx.Float64(s.Seed, i, side)
	var f float64
	if s.Skew == 2 {
		f = u * u // math.Pow costs ~20x a multiply; 2 is the default skew
	} else {
		f = math.Pow(u, s.Skew)
	}
	id := int(f * float64(s.N))
	if id >= s.N {
		id = s.N - 1
	}
	return graph.VertexID(id)
}

// Build streams the edges through graph.BuildStream into a deduplicated
// CSR without materialising an edge list.
func (s *PowerLawStream) Build(workers int) (*graph.Digraph, error) {
	return graph.BuildStream(s.N, workers, s.ForEachShard)
}
