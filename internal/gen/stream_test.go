package gen

import (
	"testing"

	"snaple/internal/graph"
)

// TestPowerLawStreamDeterministic: the whole scale pipeline rests on every
// replay of the stream being identical — shard boundaries must not change
// which edges exist, and worker counts must not change the built graph.
func TestPowerLawStreamDeterministic(t *testing.T) {
	s, err := NewPowerLawStream(500, 20_000, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	collect := func(shards int) []graph.Edge {
		var out []graph.Edge
		for sh := 0; sh < shards; sh++ {
			s.ForEachShard(sh, shards, func(u, v graph.VertexID) {
				out = append(out, graph.Edge{Src: u, Dst: v})
			})
		}
		return out
	}
	want := collect(1)
	if int64(len(want)) != s.Edges {
		t.Fatalf("one shard yielded %d draws, want %d", len(want), s.Edges)
	}
	for _, shards := range []int{2, 3, 7} {
		got := collect(shards)
		if len(got) != len(want) {
			t.Fatalf("%d shards yielded %d draws, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%d shards: draw %d is %v, want %v", shards, i, got[i], want[i])
			}
		}
	}

	g1, err := s.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	g4, err := s.Build(4)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumVertices() != g4.NumVertices() || g1.NumEdges() != g4.NumEdges() {
		t.Fatalf("worker counts disagree: %s vs %s", g1, g4)
	}
	for u := 0; u < g1.NumVertices(); u++ {
		a, b := g1.OutNeighbors(graph.VertexID(u)), g4.OutNeighbors(graph.VertexID(u))
		if len(a) != len(b) {
			t.Fatalf("vertex %d: degree %d vs %d across worker counts", u, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d row differs across worker counts", u)
			}
		}
	}
}

// TestPowerLawStreamBuildMatchesBuilder holds the streamed two-pass builder
// to the buffered FromEdges oracle: same draws in, same deduplicated
// self-loop-free CSR out.
func TestPowerLawStreamBuildMatchesBuilder(t *testing.T) {
	s, err := NewPowerLawStream(300, 10_000, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	var edges []graph.Edge
	s.ForEachShard(0, 1, func(u, v graph.VertexID) {
		edges = append(edges, graph.Edge{Src: u, Dst: v})
	})
	want, err := graph.FromEdges(s.N, edges)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	if want.NumVertices() != got.NumVertices() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("streamed build %s, buffered oracle %s", got, want)
	}
	for u := 0; u < want.NumVertices(); u++ {
		a, b := want.OutNeighbors(graph.VertexID(u)), got.OutNeighbors(graph.VertexID(u))
		if len(a) != len(b) {
			t.Fatalf("vertex %d: streamed degree %d, oracle %d", u, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d row diverges from the buffered oracle", u)
			}
		}
	}
}

// TestPowerLawStreamShape sanity-checks the degree profile: with skew 2 the
// low-index vertices must be hubs and the tail must stay sparse (expected
// degree of vertex k falls off as 1/sqrt(k)).
func TestPowerLawStreamShape(t *testing.T) {
	s, err := NewPowerLawStream(1000, 200_000, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	degSum := func(lo, hi int) int {
		sum := 0
		for u := lo; u < hi; u++ {
			sum += g.OutDegree(graph.VertexID(u))
		}
		return sum
	}
	// u² < 0.1 for ~32% of draws vs u² ≥ 0.9 for ~5%, so before dedup the
	// first centile carries ~6x the mass of the last; dedup flattens the
	// hubs somewhat. A uniform profile would put the ratio at 1.
	head, tail := degSum(0, 100), degSum(900, 1000)
	if head < 3*tail {
		t.Errorf("degree profile not heavy-tailed: first centile %d edges, last %d", head, tail)
	}
}

func TestPowerLawStreamRejectsBadParams(t *testing.T) {
	for _, c := range []struct {
		n     int
		edges int64
		skew  float64
	}{{1, 10, 2}, {10, -1, 2}, {10, 10, 0.5}} {
		if _, err := NewPowerLawStream(c.n, c.edges, c.skew, 1); err == nil {
			t.Errorf("NewPowerLawStream(%d, %d, %g) accepted bad params", c.n, c.edges, c.skew)
		}
	}
}
