package gen

import (
	"reflect"
	"testing"

	"snaple/internal/graph"
)

func edgesOf(g *graph.Digraph) []graph.Edge { return g.Edges() }

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(100, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 100 {
		t.Errorf("V = %d", g.NumVertices())
	}
	// Duplicates/loops removed: expect close to but not above 500.
	if g.NumEdges() > 500 || g.NumEdges() < 400 {
		t.Errorf("E = %d, want in (400, 500]", g.NumEdges())
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	build := map[string]func(seed uint64) (*graph.Digraph, error){
		"er":   func(s uint64) (*graph.Digraph, error) { return ErdosRenyi(50, 200, s) },
		"ba":   func(s uint64) (*graph.Digraph, error) { return BarabasiAlbert(80, 3, s) },
		"ws":   func(s uint64) (*graph.Digraph, error) { return WattsStrogatz(60, 4, 0.1, s) },
		"rmat": func(s uint64) (*graph.Digraph, error) { return RMAT(7, 8, 0.57, 0.19, 0.19, s) },
		"comm": func(s uint64) (*graph.Digraph, error) {
			return Community(CommunityConfig{N: 100, Communities: 5}, s)
		},
	}
	for name, fn := range build {
		t.Run(name, func(t *testing.T) {
			a, err := fn(7)
			if err != nil {
				t.Fatal(err)
			}
			b, err := fn(7)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(edgesOf(a), edgesOf(b)) {
				t.Error("same seed produced different graphs")
			}
			c, err := fn(8)
			if err != nil {
				t.Fatal(err)
			}
			if reflect.DeepEqual(edgesOf(a), edgesOf(c)) {
				t.Error("different seeds produced identical graphs")
			}
		})
	}
}

func TestBarabasiAlbertPowerLaw(t *testing.T) {
	g, err := BarabasiAlbert(2000, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasInEdges() {
		// in-degrees are where the power law lives; recompute via stats
		// using a rebuilt graph.
		gb := graph.NewBuilder(g.NumVertices()).WithInEdges(true)
		g.ForEachEdge(func(u, v graph.VertexID) { gb.AddEdge(u, v) })
		g2, err := gb.Build()
		if err != nil {
			t.Fatal(err)
		}
		g = g2
	}
	maxIn := 0
	for u := 0; u < g.NumVertices(); u++ {
		if d := g.InDegree(graph.VertexID(u)); d > maxIn {
			maxIn = d
		}
	}
	avgIn := float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(maxIn) < 8*avgIn {
		t.Errorf("max in-degree %d vs avg %.1f: tail looks too light for preferential attachment", maxIn, avgIn)
	}
}

func TestWattsStrogatzClustering(t *testing.T) {
	ws, err := WattsStrogatz(1000, 6, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	er, err := ErdosRenyi(1000, ws.NumEdges(), 5)
	if err != nil {
		t.Fatal(err)
	}
	cw := graph.ApproxClustering(ws, 2000, 1)
	ce := graph.ApproxClustering(er, 2000, 1)
	if cw <= ce+0.05 {
		t.Errorf("WS clustering %.3f not clearly above ER %.3f", cw, ce)
	}
}

func TestRMATSkew(t *testing.T) {
	g, err := RMAT(10, 8, 0.57, 0.19, 0.19, 11)
	if err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	if float64(s.MaxOutDegree) < 5*s.AvgOutDegree {
		t.Errorf("RMAT out-degree max %d vs avg %.1f: insufficient skew", s.MaxOutDegree, s.AvgOutDegree)
	}
}

func TestCommunityHomophilyAndClustering(t *testing.T) {
	cfg := CommunityConfig{N: 2000, Communities: 20, PLocal: 0.6, PClose: 0.25}
	g, err := Community(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Expected intra fraction: >= PLocal*0.9 accounting for closure edges
	// landing anywhere; random baseline would be 1/20 = 0.05.
	if f := IntraCommunityFraction(g, cfg.Communities); f < 0.4 {
		t.Errorf("intra-community fraction %.3f, want >= 0.4", f)
	}
	if c := graph.ApproxClustering(g, 2000, 1); c < 0.02 {
		t.Errorf("clustering %.4f, want >= 0.02", c)
	}
}

func TestCommunitySymmetric(t *testing.T) {
	g, err := Community(CommunityConfig{N: 200, Communities: 4, Symmetric: true}, 3)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	g.ForEachEdge(func(u, v graph.VertexID) {
		if !g.HasEdge(v, u) {
			bad++
		}
	})
	if bad != 0 {
		t.Errorf("%d edges missing their reverse in symmetric graph", bad)
	}
}

func TestGeneratorValidation(t *testing.T) {
	tests := []struct {
		name string
		err  func() error
	}{
		{"er n", func() error { _, err := ErdosRenyi(1, 5, 0); return err }},
		{"er m", func() error { _, err := ErdosRenyi(5, -1, 0); return err }},
		{"ba m>=n", func() error { _, err := BarabasiAlbert(3, 3, 0); return err }},
		{"ws beta", func() error { _, err := WattsStrogatz(10, 2, 1.5, 0); return err }},
		{"rmat probs", func() error { _, err := RMAT(4, 4, 0.9, 0.9, 0.9, 0); return err }},
		{"rmat scale", func() error { _, err := RMAT(0, 4, 0.5, 0.2, 0.2, 0); return err }},
		{"comm n", func() error { _, err := Community(CommunityConfig{N: 2, Communities: 1}, 0); return err }},
		{"comm plocal", func() error {
			_, err := Community(CommunityConfig{N: 10, Communities: 2, PLocal: 0.9, PClose: 0.5}, 0)
			return err
		}},
		{"comm gamma", func() error {
			_, err := Community(CommunityConfig{N: 10, Communities: 2, Gamma: 0.5}, 0)
			return err
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.err() == nil {
				t.Error("want validation error, got nil")
			}
		})
	}
}

func TestPowerLawDegreeBounds(t *testing.T) {
	for _, u := range []float64{0, 0.1, 0.5, 0.9, 0.999, 0.9999999} {
		d := powerLawDegree(u, 2, 50, 2.3)
		if d < 2 || d > 50 {
			t.Errorf("powerLawDegree(%v) = %d out of [2,50]", u, d)
		}
	}
	// Low u gives min degree; u→1 saturates at max.
	if powerLawDegree(0, 3, 100, 2.5) != 3 {
		t.Error("u=0 should give MinDeg")
	}
	if powerLawDegree(0.9999999, 3, 100, 2.5) != 100 {
		t.Error("u→1 should cap at MaxDeg")
	}
}
